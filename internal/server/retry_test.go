package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"infat/internal/machine"
)

// flakyHandler answers with failStatus for the first fail requests, then
// delegates to ok.
func flakyHandler(fail int, failStatus int, ok http.HandlerFunc) (http.HandlerFunc, *atomic.Int64) {
	var calls atomic.Int64
	return func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(fail) {
			http.Error(w, `{"error":"try later"}`, failStatus)
			return
		}
		ok(w, r)
	}, &calls
}

func healthOK(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, `{"status":"ok"}`)
}

// fastClient returns a client with negligible backoff so retry tests
// stay fast.
func fastClient(url string) *Client {
	c := NewClient(url)
	c.RetryBase = time.Microsecond
	return c
}

func TestClientRetriesTransientStatuses(t *testing.T) {
	for _, status := range []int{http.StatusServiceUnavailable, http.StatusTooManyRequests} {
		h, calls := flakyHandler(2, status, healthOK)
		ts := httptest.NewServer(h)
		c := fastClient(ts.URL)
		if err := c.Healthz(context.Background()); err != nil {
			t.Errorf("status %d: err = %v after retries", status, err)
		}
		if got := calls.Load(); got != 3 {
			t.Errorf("status %d: %d attempts, want 3", status, got)
		}
		ts.Close()
	}
}

func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	h, calls := flakyHandler(1000, http.StatusServiceUnavailable, healthOK)
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := fastClient(ts.URL)
	c.MaxAttempts = 2
	err := c.Healthz(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 APIError", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("%d attempts, want 2", got)
	}
}

func TestClientNoRetry(t *testing.T) {
	h, calls := flakyHandler(1, http.StatusServiceUnavailable, healthOK)
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := fastClient(ts.URL)
	c.NoRetry = true
	if err := c.Healthz(context.Background()); err == nil {
		t.Fatal("NoRetry client retried through the failure")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("%d attempts, want 1", got)
	}
}

// TestClientDoesNotRetryDefinitiveStatuses: 4xx (other than 429) and 504
// are answers, not congestion — 504 in particular may have side effects
// (the job ran), so blind replay is wrong.
func TestClientDoesNotRetryDefinitiveStatuses(t *testing.T) {
	for _, status := range []int{http.StatusBadRequest, http.StatusGatewayTimeout} {
		h, calls := flakyHandler(1000, status, healthOK)
		ts := httptest.NewServer(h)
		c := fastClient(ts.URL)
		err := c.Healthz(context.Background())
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != status {
			t.Errorf("err = %v, want %d APIError", err, status)
		}
		if got := calls.Load(); got != 1 {
			t.Errorf("status %d: %d attempts, want 1", status, got)
		}
		ts.Close()
	}
}

// flakyTransport fails the first n round trips at the connection level,
// then delegates to the default transport.
type flakyTransport struct {
	calls atomic.Int64
	fail  int64
}

func (f *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if f.calls.Add(1) <= f.fail {
		return nil, errors.New("simulated connection reset")
	}
	return http.DefaultTransport.RoundTrip(r)
}

func TestClientRetriesTransportErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(healthOK))
	defer ts.Close()
	tr := &flakyTransport{fail: 2}
	c := fastClient(ts.URL)
	c.HTTP = &http.Client{Transport: tr}
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("err = %v after transport retries", err)
	}
	if got := tr.calls.Load(); got != 3 {
		t.Errorf("%d round trips, want 3", got)
	}
}

func TestClientRespectsContextCancellation(t *testing.T) {
	h, calls := flakyHandler(1000, http.StatusServiceUnavailable, healthOK)
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := NewClient(ts.URL)
	c.RetryBase = time.Hour // the cancel must interrupt the first backoff
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- c.Healthz(ctx) }()
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errCh:
		// The last real failure is reported, not the bare context error.
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("err = %v, want the 503 APIError observed before cancel", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("%d attempts, want 1", got)
	}
}

func TestWaitReadyRetriesUntilUp(t *testing.T) {
	// Refused connections (no listener yet) are transient: WaitReady must
	// keep probing until the deadline, then name the last failure.
	c := NewClient("http://127.0.0.1:1") // reserved port: always refused
	start := time.Now()
	err := c.WaitReady(context.Background(), 150*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "not ready within") {
		t.Fatalf("err = %v, want not-ready error", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("WaitReady blocked %v past its deadline", elapsed)
	}

	// A healthy server is ready immediately.
	ts := httptest.NewServer(http.HandlerFunc(healthOK))
	defer ts.Close()
	if err := NewClient(ts.URL).WaitReady(context.Background(), 2*time.Second); err != nil {
		t.Fatalf("WaitReady on live server: %v", err)
	}
}

// TestBackoffUsesInjectedJitter: the backoff schedule is fully
// determined once a Jitter source is installed — exponential doubling
// from RetryBase, capped, plus exactly what the source returns.
func TestBackoffUsesInjectedJitter(t *testing.T) {
	var maxes []time.Duration
	c := NewClient("http://unused")
	c.Jitter = func(max time.Duration) time.Duration {
		maxes = append(maxes, max)
		return max - 1 // the largest value a real source could draw
	}
	base := 100 * time.Millisecond
	var got []time.Duration
	for retry := 1; retry <= 6; retry++ {
		got = append(got, c.backoff(base, retry))
	}
	// Exponential delays before jitter: 100ms, 200ms, ..., capped at 2s.
	delays := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second, // capped at maxRetryDelay
	}
	for i, d := range delays {
		wantMax := d/4 + 1
		if maxes[i] != wantMax {
			t.Errorf("retry %d: jitter bound = %v, want %v", i+1, maxes[i], wantMax)
		}
		if want := d + wantMax - 1; got[i] != want {
			t.Errorf("backoff(retry=%d) = %v, want %v", i+1, got[i], want)
		}
	}
}

// TestSeededClientBackoffDeterministic: two clients seeded alike draw
// identical jitter sequences; a different seed diverges.
func TestSeededClientBackoffDeterministic(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		c := NewClientSeeded("http://unused", seed)
		var ds []time.Duration
		for retry := 1; retry <= 8; retry++ {
			ds = append(ds, c.backoff(DefaultRetryBase, retry))
		}
		return ds
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 schedules diverge at retry %d: %v != %v", i+1, a[i], b[i])
		}
	}
	diff := schedule(43)
	same := true
	for i := range a {
		if a[i] != diff[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical 8-step schedules")
	}
}

// TestDispatchRecoversWorkerPanic: a panicking job must cost its request
// a typed 500 — not the process — free its worker slot, and be counted.
func TestDispatchRecoversWorkerPanic(t *testing.T) {
	s := New(Config{Workers: 1})
	status, body, ok := s.dispatch(context.Background(), func() (int, []byte) {
		panic("injected simulator bug")
	})
	if !ok || status != http.StatusInternalServerError {
		t.Fatalf("dispatch = (%d, ok=%v), want 500", status, ok)
	}
	if !strings.Contains(string(body), "recovered panic: injected simulator bug") {
		t.Errorf("body does not name the panic: %s", body)
	}
	if got := s.metrics.internalPanics.Load(); got != 1 {
		t.Errorf("internalPanics = %d, want 1", got)
	}
	if got := s.snapshot().Admission["internal_panics"]; got != 1 {
		t.Errorf("snapshot internal_panics = %d, want 1", got)
	}
	// The slot is free again: a normal job still runs.
	status, body, ok = s.dispatch(context.Background(), func() (int, []byte) {
		return http.StatusOK, []byte("fine")
	})
	if !ok || status != http.StatusOK || string(body) != "fine" {
		t.Fatalf("post-panic dispatch = (%d, %q, ok=%v)", status, body, ok)
	}
}

func TestTrapInternalClassification(t *testing.T) {
	class, kind := classifyTrap(fmt.Errorf("run: %w", internalTrapForTest()))
	if class != trapClassInternal || kind != "internal" {
		t.Errorf("classifyTrap = (%q, %q), want (internal, internal)", class, kind)
	}
	var m metrics
	m.countTrap(trapClassInternal)
	if m.trapInternal.Load() != 1 {
		t.Error("countTrap did not route the internal class")
	}
}

// internalTrapForTest builds the error shape RunC produces for a
// recovered simulator panic.
func internalTrapForTest() error {
	var err error
	func() {
		defer machine.RecoverInternal(&err)
		panic("boom")
	}()
	return err
}
