package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestBackoffLargeRetryTable audits the backoff schedule far past the
// doubling range: for any retry count — including the ~2^20 attempts
// WaitReady configures — the delay is clamped monotonically at
// maxRetryDelay and never wraps negative, whatever the base.
func TestBackoffLargeRetryTable(t *testing.T) {
	c := NewClient("http://unused")
	c.Jitter = func(max time.Duration) time.Duration {
		if max <= 0 {
			t.Fatalf("jitter bound %v not positive", max)
		}
		return max - 1 // worst case a real source draws
	}
	maxJittered := maxRetryDelay + maxRetryDelay/4 // absolute ceiling incl. jitter
	for _, base := range []time.Duration{
		time.Nanosecond,
		DefaultRetryBase,
		time.Second,
		maxRetryDelay,
		time.Hour,
		1 << 62, // pathological: near-overflow base
		0,       // invalid: normalised to the default
		-time.Second,
	} {
		prev := time.Duration(0)
		for _, retry := range []int{1, 2, 8, 31, 32, 33, 64, 100, 1000, 1 << 20} {
			d := c.backoff(base, retry)
			if d <= 0 {
				t.Fatalf("backoff(base=%v, retry=%d) = %v: wrapped or zero", base, retry, d)
			}
			if d > maxJittered {
				t.Fatalf("backoff(base=%v, retry=%d) = %v exceeds ceiling %v", base, retry, d, maxJittered)
			}
			if d < prev {
				t.Fatalf("backoff(base=%v) not monotone: retry=%d gives %v after %v", base, retry, d, prev)
			}
			prev = d
		}
		// Deep in the schedule the clamp must be exact: cap plus the
		// injected worst-case jitter of the cap's bound.
		if got, want := c.backoff(base, 1<<20), maxRetryDelay+maxRetryDelay/4; got != want {
			t.Errorf("backoff(base=%v, retry=1<<20) = %v, want clamped %v", base, got, want)
		}
	}
}

// TestAPIErrorCarriesRetryAfter: the client surfaces the server's
// Retry-After hint on the typed error.
func TestAPIErrorCarriesRetryAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(RetryAfterHeader, "7")
		http.Error(w, `{"error":"busy"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := fastClient(ts.URL)
	c.MaxAttempts = 1
	err := c.Healthz(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want APIError", err)
	}
	if apiErr.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %v, want 7s", apiErr.RetryAfter)
	}
}

func TestParseRetryAfter(t *testing.T) {
	for in, want := range map[string]time.Duration{
		"1":    time.Second,
		" 30 ": 30 * time.Second,
		"0":    0,
		"-5":   0,
		"":     0,
		"soon": 0,
		"1.5":  0, // integer-seconds form only
	} {
		if got := parseRetryAfter(in); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", in, got, want)
		}
	}
}

// TestClientHonorsRetryAfterOverBackoff: with a computed backoff of an
// hour, a server saying "Retry-After: 1" must be believed — the retry
// happens in about a second, not an hour.
func TestClientHonorsRetryAfterOverBackoff(t *testing.T) {
	h, calls := flakyHandler(1, http.StatusServiceUnavailable, healthOK)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(RetryAfterHeader, "1")
		h(w, r)
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.RetryBase = time.Hour // would stall the test if the hint were ignored
	start := time.Now()
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("err = %v after Retry-After retry", err)
	}
	elapsed := time.Since(start)
	if elapsed < 900*time.Millisecond || elapsed > 10*time.Second {
		t.Errorf("retried after %v, want ~1s (the server's hint)", elapsed)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("%d attempts, want 2", got)
	}
}

// TestGetEndpointsRideRetryLoop: the GET-based client calls (Metrics,
// JulietCases) go through the same retry loop as POSTs — a transient
// 503 is retried to success.
func TestGetEndpointsRideRetryLoop(t *testing.T) {
	t.Run("metrics", func(t *testing.T) {
		h, calls := flakyHandler(2, http.StatusServiceUnavailable, func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, MetricsSnapshot{Requests: map[string]uint64{"total": 1}})
		})
		ts := httptest.NewServer(h)
		defer ts.Close()
		m, err := fastClient(ts.URL).Metrics(context.Background())
		if err != nil || m.Requests["total"] != 1 {
			t.Fatalf("Metrics = %+v, %v after retries", m, err)
		}
		if got := calls.Load(); got != 3 {
			t.Errorf("%d attempts, want 3", got)
		}
	})
	t.Run("juliet list", func(t *testing.T) {
		h, calls := flakyHandler(2, http.StatusServiceUnavailable, func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, JulietListResponse{Count: 1, Cases: []string{"x"}})
		})
		ts := httptest.NewServer(h)
		defer ts.Close()
		cases, err := fastClient(ts.URL).JulietCases(context.Background())
		if err != nil || len(cases) != 1 {
			t.Fatalf("JulietCases = %v, %v after retries", cases, err)
		}
		if got := calls.Load(); got != 3 {
			t.Errorf("%d attempts, want 3", got)
		}
	})
}

// TestCancelDuringBackoffReturnsContextError: cancellation during a
// backoff sleep returns promptly with an error that is both the
// context error (errors.Is) and the last observed APIError (errors.As).
func TestCancelDuringBackoffReturnsContextError(t *testing.T) {
	h, calls := flakyHandler(1000, http.StatusServiceUnavailable, healthOK)
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := NewClient(ts.URL)
	c.RetryBase = time.Hour
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- c.Healthz(ctx) }()
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want errors.Is(context.Canceled)", err)
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
			t.Errorf("err = %v, want joined 503 APIError", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}
