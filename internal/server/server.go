// Package server is the analysis-as-a-service layer over the In-Fat
// Pointer simulator: a hardened HTTP/JSON daemon (cmd/ifp-serve) that
// accepts MiniC programs, Juliet cases, and workload cells over the
// network and answers with the spatial-safety verdict, trap
// classification, and machine counters a local run would produce.
//
// Hardening, because the guest programs are untrusted input:
//
//   - Admission control: simulations run under a bounded worker pool
//     (one semaphore slot per worker, internal/pool's sizing rule), so a
//     burst cannot fork unbounded simulator goroutines. Waiting is
//     bounded by the request deadline.
//   - Execution budget: every run carries a cycle fuel limit
//     (machine.FuelLimit); a guest infinite loop trips a typed resource
//     trap instead of pinning a worker. Request-supplied fuel is clamped
//     to the server's MaxFuel cap, so a client cannot restore the
//     unbounded behaviour the budget exists to prevent.
//   - Request deadlines: each request gets a context deadline; if it
//     expires the client receives 503/504 while the worker, bounded by
//     fuel, finishes and frees its slot in the background.
//   - Memoization: one content-addressed store (internal/memo) backs
//     every repeated-work fast path. /v1/run responses are keyed by
//     (sha256(source), mode, fuel) with request coalescing; workload and
//     chaos cells — whether they arrive through /v1/workload or a batch
//     stream — share cell entries keyed by their canonical coordinates,
//     so a cell any endpoint has computed is replayed everywhere without
//     re-simulation, a worker slot, or a runtime checkout. Hit state is
//     surfaced only via headers (X-Ifp-Cache, X-Ifp-Memo) and /metrics,
//     never in payload bytes.
//
// Endpoints: POST /v1/run, POST /v1/juliet (GET lists cases),
// POST /v1/workload, GET /healthz, GET /metrics.
package server

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"infat/internal/juliet"
	"infat/internal/memo"
	"infat/internal/pool"
)

// Defaults for Config zero values.
const (
	DefaultRequestTimeout = 30 * time.Second
	// DefaultCacheEntries bounds the unified memo store: sized for several
	// full campaigns (the default batch plan is ~200 cells, the chaos
	// campaign 216) plus a working set of /v1/run entries, so one batch
	// request cannot evict another campaign's warm cells.
	DefaultCacheEntries = 2048
	// DefaultFuel is the per-run cycle budget when a request does not set
	// its own: generous for every real program the repo runs (the whole
	// Juliet suite stays far below it per case) while bounding an
	// infinite loop to a few seconds of wall clock.
	DefaultFuel = 200_000_000
	// DefaultMaxFuel caps the budget a request may ask for: ten defaults,
	// enough headroom for any legitimately long run while keeping the
	// worst-case worker hold time bounded to tens of seconds.
	DefaultMaxFuel        = 10 * DefaultFuel
	DefaultMaxSourceBytes = 1 << 20
	DefaultMaxScale       = 4
	// DefaultBatchTimeout is the per-request deadline of the streaming
	// batch endpoints: a whole campaign per request, so the budget is a
	// multiple of the unary deadline rather than sharing it.
	DefaultBatchTimeout = 5 * time.Minute
	// DefaultRetryAfter is the Retry-After hint on 503/504 responses: long
	// enough for a queue full of bounded simulations to drain a slot,
	// short enough that a backing-off client returns promptly.
	DefaultRetryAfter = 1 * time.Second
)

// Config parameterizes a Server. The zero value is a working production
// configuration; every field has a documented default.
type Config struct {
	// Workers caps concurrent simulations (admission control). <= 0
	// selects GOMAXPROCS, the throughput optimum for the CPU-bound
	// simulator (see DESIGN.md "Concurrency model").
	Workers int
	// RequestTimeout is the per-request context deadline (0 =
	// DefaultRequestTimeout). It covers queueing and simulation.
	RequestTimeout time.Duration
	// CacheEntries bounds the unified memo store — run results and
	// memoized campaign cells share it (0 = DefaultCacheEntries).
	CacheEntries int
	// MemoDir, when non-empty, names a directory whose memo snapshot is
	// loaded at construction and can be saved with SaveMemo — warm starts
	// across restarts. A corrupt or version-skewed snapshot is detected
	// and ignored (the server starts cold), never trusted.
	MemoDir string
	// Fuel is the cycle budget applied to runs that do not request their
	// own (0 = DefaultFuel). The budget is what guarantees a guest
	// infinite loop cannot hold a worker.
	Fuel uint64
	// MaxFuel caps the budget a request may set (0 = DefaultMaxFuel,
	// raised to Fuel if smaller). Request fuel above the cap is clamped,
	// never honoured — without the cap a client could name an effectively
	// unbounded budget and pin workers indefinitely.
	MaxFuel uint64
	// MaxSourceBytes bounds submitted program size (0 =
	// DefaultMaxSourceBytes).
	MaxSourceBytes int
	// MaxScale bounds the workload-cell scale parameter (0 =
	// DefaultMaxScale).
	MaxScale int
	// BatchTimeout is the per-request deadline of the streaming batch
	// endpoints (0 = DefaultBatchTimeout, raised to RequestTimeout if
	// smaller).
	BatchTimeout time.Duration
	// RetryAfter is the hint sent in the Retry-After header of 503/504
	// responses (0 = DefaultRetryAfter). Rendered as whole seconds,
	// rounded up, minimum 1.
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	c.Workers = pool.Workers(c.Workers)
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = DefaultCacheEntries
	}
	if c.Fuel == 0 {
		c.Fuel = DefaultFuel
	}
	if c.MaxFuel == 0 {
		c.MaxFuel = DefaultMaxFuel
	}
	// The operator's default budget is always admissible.
	if c.MaxFuel < c.Fuel {
		c.MaxFuel = c.Fuel
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = DefaultMaxSourceBytes
	}
	if c.MaxScale <= 0 {
		c.MaxScale = DefaultMaxScale
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = DefaultBatchTimeout
	}
	if c.BatchTimeout < c.RequestTimeout {
		c.BatchTimeout = c.RequestTimeout
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	return c
}

// Server is the service: an http.Handler plus the worker semaphore,
// result cache, metrics, and the interned Juliet suite. Construct with
// New; the zero value is not usable.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	sem     chan struct{}
	memo    *memo.Store
	metrics metrics

	julietNames []string
	julietCases map[string]juliet.Case
}

// New builds a Server from cfg (zero fields take defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		mux:         http.NewServeMux(),
		sem:         make(chan struct{}, cfg.Workers),
		memo:        memo.NewStore(cfg.CacheEntries),
		julietCases: make(map[string]juliet.Case),
	}
	if cfg.MemoDir != "" {
		// A bad snapshot can only cost warmth: log-free best effort, the
		// store keeps whatever valid prefix loaded.
		_ = s.memo.LoadSnapshot(cfg.MemoDir)
	}
	for _, c := range juliet.Generate() {
		s.julietNames = append(s.julietNames, c.Name)
		s.julietCases[c.Name] = c
	}
	s.mux.HandleFunc("POST /v1/run", s.instrument(&s.metrics.reqRun, true, s.handleRun))
	s.mux.HandleFunc("POST /v1/juliet", s.instrument(&s.metrics.reqJuliet, true, s.handleJuliet))
	s.mux.HandleFunc("GET /v1/juliet", s.instrument(&s.metrics.reqJuliet, false, s.handleJulietList))
	s.mux.HandleFunc("POST /v1/workload", s.instrument(&s.metrics.reqWorkload, true, s.handleWorkload))
	s.mux.HandleFunc("POST "+BatchPath, s.instrumentTimeout(&s.metrics.reqBatch, cfg.BatchTimeout, s.handleBatch))
	s.mux.HandleFunc("POST "+GridPath, s.instrumentTimeout(&s.metrics.reqGrid, cfg.BatchTimeout, s.handleGrid))
	s.mux.HandleFunc("POST "+ChaosPath, s.instrumentTimeout(&s.metrics.reqChaos, cfg.BatchTimeout, s.handleChaos))
	s.mux.HandleFunc("GET /healthz", s.instrument(&s.metrics.reqHealthz, false, s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument(&s.metrics.reqMetrics, false, s.handleMetrics))
	return s
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// MemoStore returns the server's unified memo store (never nil).
func (s *Server) MemoStore() *memo.Store { return s.memo }

// SaveMemo persists the memo store to the configured MemoDir (no-op
// without one) — called by ifp-serve on graceful shutdown.
func (s *Server) SaveMemo() error {
	if s.cfg.MemoDir == "" {
		return nil
	}
	return s.memo.SaveSnapshot(s.cfg.MemoDir)
}

// ServeHTTP dispatches to the endpoint handlers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// instrument wraps a handler with the request counter, in-flight gauge,
// latency histogram, and — for simulation endpoints — the per-request
// deadline.
func (s *Server) instrument(counter interface{ Add(uint64) uint64 }, deadline bool, h http.HandlerFunc) http.HandlerFunc {
	timeout := time.Duration(0)
	if deadline {
		timeout = s.cfg.RequestTimeout
	}
	return s.instrumentTimeout(counter, timeout, h)
}

// instrumentTimeout is instrument with an explicit deadline (0 = none);
// the streaming batch endpoints run under their own, longer budget. A
// propagated client deadline (DeadlineHeader) clamps the configured
// timeout down — never up — so the worker gives up the moment the
// original caller would, instead of simulating into the void.
func (s *Server) instrumentTimeout(counter interface{ Add(uint64) uint64 }, timeout time.Duration, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		counter.Add(1)
		s.metrics.inFlight.Add(1)
		start := time.Now()
		defer func() {
			s.metrics.inFlight.Add(-1)
			s.metrics.observeLatency(time.Since(start))
		}()
		effective := timeout
		if d := ParseDeadlineHeader(r.Header.Get(DeadlineHeader)); d > 0 && timeout > 0 && d < timeout {
			effective = d
			s.metrics.deadlinePropagated.Add(1)
		}
		if effective > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), effective)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

// dispatch runs job on a worker slot under ctx. It returns the job's
// (status, body) or an HTTP error status when the deadline expires
// first: 503 while still queued (admission rejection), 504 once running.
// Failure bodies are the same structured JSON errors the handlers write
// everywhere else, so an admission rejection is machine-readable — pair
// them with writeBusy, which adds the Retry-After hint. A job that
// outlives its request keeps its slot until it finishes — bounded by the
// fuel budget — so the semaphore always reflects real load.
func (s *Server) dispatch(ctx context.Context, job func() (int, []byte)) (status int, body []byte, ok bool) {
	// Checked before the select so an already-expired deadline is always
	// a rejection, even when a worker slot happens to be free.
	if ctx.Err() != nil {
		s.metrics.rejected.Add(1)
		return http.StatusServiceUnavailable, errorBody(statusMessage(http.StatusServiceUnavailable)), false
	}
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.metrics.rejected.Add(1)
		return http.StatusServiceUnavailable, errorBody(statusMessage(http.StatusServiceUnavailable)), false
	}
	type result struct {
		status int
		body   []byte
	}
	ch := make(chan result, 1)
	go func() {
		defer func() { <-s.sem }()
		st, b := s.runRecovered(job)
		ch <- result{st, b}
	}()
	select {
	case res := <-ch:
		return res.status, res.body, true
	case <-ctx.Done():
		s.metrics.deadline.Add(1)
		return http.StatusGatewayTimeout, errorBody(statusMessage(http.StatusGatewayTimeout)), false
	}
}

// runRecovered executes a worker job, converting an escaped panic into a
// typed 500 instead of killing the daemon: guest programs are untrusted
// input, so a simulator bug one of them tickles must cost that request
// only. Recovered panics are counted (internal_panics in /metrics) —
// every one is a simulator bug worth a report.
func (s *Server) runRecovered(job func() (int, []byte)) (status int, body []byte) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.internalPanics.Add(1)
			status = http.StatusInternalServerError
			body = errorBody(fmt.Sprintf("internal error: recovered panic: %v", r))
		}
	}()
	return job()
}
