package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"infat/internal/memo"
	"infat/internal/minic"
	"infat/internal/rt"
)

const cleanProg = `int main() {
	long i;
	long acc = 0;
	long *p = (long*)malloc(8 * sizeof(long));
	for (i = 0; i < 8; i = i + 1) { p[i] = i * i; }
	for (i = 0; i < 8; i = i + 1) { acc = acc + p[i]; }
	free(p);
	print(acc);
	return 3;
}`

const overflowProg = `int main() {
	char buf[8];
	long i;
	for (i = 0; i <= 8; i = i + 1) { buf[i] = 'A'; }
	return 0;
}`

const loopProg = `int main() { while (1) { } return 0; }`

func newTestServer(t *testing.T, cfg Config) (*Server, *Client, func()) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	return s, NewClient(ts.URL), ts.Close
}

// TestRunMatchesLocal checks the acceptance contract: for every mode,
// the service's verdict, output, exit code, and counters equal a local
// run of the same (source, mode) under the same fuel.
func TestRunMatchesLocal(t *testing.T) {
	_, c, done := newTestServer(t, Config{})
	defer done()
	ctx := context.Background()
	for _, mode := range []rt.Mode{rt.Baseline, rt.Subheap, rt.Wrapped, rt.Hybrid} {
		resp, cached, err := c.Run(ctx, RunRequest{Source: cleanProg, Mode: mode.String()})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if cached {
			t.Fatalf("%v: first submission reported as cache hit", mode)
		}
		out, exit, counters, err := minic.ExecuteBudget(cleanProg, mode, DefaultFuel)
		if err != nil {
			t.Fatalf("%v: local run: %v", mode, err)
		}
		if resp.Trap != nil || resp.Exit != exit || !reflect.DeepEqual(resp.Output, out) {
			t.Fatalf("%v: server (out=%v exit=%d trap=%+v) != local (out=%v exit=%d)",
				mode, resp.Output, resp.Exit, resp.Trap, out, exit)
		}
		if resp.Counters != counters {
			t.Fatalf("%v: server counters %+v != local %+v", mode, resp.Counters, counters)
		}
	}
}

// TestRunResponseBytesStable checks byte-level determinism: a cache hit
// replays exactly the cold bytes, and an independent server instance
// produces the same bytes for the same request.
func TestRunResponseBytesStable(t *testing.T) {
	post := func(ts *httptest.Server) (string, []byte) {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json",
			strings.NewReader(`{"source":`+encodeJSONString(cleanProg)+`,"mode":"subheap"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		return resp.Header.Get(CacheHeader), body
	}
	ts1 := httptest.NewServer(New(Config{}))
	defer ts1.Close()
	ts2 := httptest.NewServer(New(Config{}))
	defer ts2.Close()

	state1, cold := post(ts1)
	state2, warm := post(ts1)
	_, other := post(ts2)
	if state1 != "miss" || state2 != "hit" {
		t.Fatalf("cache states = %q, %q; want miss, hit", state1, state2)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm bytes differ from cold bytes:\n%s\n%s", cold, warm)
	}
	if !bytes.Equal(cold, other) {
		t.Fatalf("bytes differ across server instances:\n%s\n%s", cold, other)
	}
}

func encodeJSONString(s string) string { return string(mustJSON(s)) }

// TestHandlerErrors is the table-driven bad-input sweep.
func TestHandlerErrors(t *testing.T) {
	s := New(Config{MaxSourceBytes: 256})
	ts := httptest.NewServer(s)
	defer ts.Close()

	big := `{"source":"` + strings.Repeat("x", 512) + `"}`
	tests := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"bad json", "POST", "/v1/run", `{"source":`, http.StatusBadRequest},
		{"unknown field", "POST", "/v1/run", `{"source":"int main(){return 0;}","mod":"subheap"}`, http.StatusBadRequest},
		{"trailing data", "POST", "/v1/run", `{"source":"x"} {"source":"y"}`, http.StatusBadRequest},
		{"empty source", "POST", "/v1/run", `{"source":""}`, http.StatusBadRequest},
		{"null body", "POST", "/v1/run", `null`, http.StatusBadRequest},
		{"oversized source", "POST", "/v1/run", big, http.StatusRequestEntityTooLarge},
		{"unknown mode", "POST", "/v1/run", `{"source":"x","mode":"fat"}`, http.StatusBadRequest},
		{"compile error", "POST", "/v1/run", `{"source":"int main() { return }"}`, http.StatusUnprocessableEntity},
		{"wrong method run", "GET", "/v1/run", "", http.StatusMethodNotAllowed},
		{"unknown juliet case", "POST", "/v1/juliet", `{"case":"CWE999_nope"}`, http.StatusNotFound},
		{"juliet bad mode", "POST", "/v1/juliet", `{"case":"x","mode":"fat"}`, http.StatusBadRequest},
		{"unknown workload", "POST", "/v1/workload", `{"name":"nope"}`, http.StatusNotFound},
		{"scale out of range", "POST", "/v1/workload", `{"name":"treeadd","scale":99}`, http.StatusBadRequest},
		{"negative scale", "POST", "/v1/workload", `{"name":"treeadd","scale":-1}`, http.StatusBadRequest},
		{"unknown path", "GET", "/v1/nope", "", http.StatusNotFound},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

// TestDeadlineExceeded: with an expired per-request deadline the request
// is turned away by admission control — never simulated — and the
// outcome is not cached.
func TestDeadlineExceeded(t *testing.T) {
	s, c, done := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	defer done()
	// 503 is normally retried; disable that to observe a single rejection.
	c.NoRetry = true
	_, _, err := c.Run(context.Background(), RunRequest{Source: cleanProg})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 APIError", err)
	}
	if st := s.memo.KindStats(memo.KindRun); st.Entries != 0 {
		t.Fatalf("failed request left %d cache entries", st.Entries)
	}
	if got := s.metrics.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}

// TestConcurrentDedup checks that concurrent identical submissions
// coalesce through the cache: one simulation, everyone else a hit, all
// responses byte-identical.
func TestConcurrentDedup(t *testing.T) {
	s, _, done := newTestServer(t, Config{})
	defer done()
	ts := httptest.NewServer(s)
	defer ts.Close()

	const n = 8
	body := `{"source":` + encodeJSONString(cleanProg) + `,"mode":"wrapped"}`
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, b)
				return
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()
	st := s.memo.KindStats(memo.KindRun)
	if st.Misses != 1 || st.Hits != n-1 {
		t.Fatalf("cache hits/misses = %d/%d, want %d/1", st.Hits, st.Misses, n-1)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs:\n%s\n%s", i, bodies[0], bodies[i])
		}
	}
}

// TestFuelTrap: a guest infinite loop comes back as a typed fuel trap,
// not a hang, and the counters show the budget was honoured.
func TestFuelTrap(t *testing.T) {
	_, c, done := newTestServer(t, Config{})
	defer done()
	const fuel = 200_000
	start := time.Now()
	resp, _, err := c.Run(context.Background(), RunRequest{Source: loopProg, Fuel: fuel})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trap == nil || resp.Trap.Class != trapClassFuel || resp.Trap.Kind != "fuel" {
		t.Fatalf("trap = %+v, want fuel", resp.Trap)
	}
	if resp.Counters.Cycles < fuel {
		t.Fatalf("trapped at %d cycles, before the %d budget", resp.Counters.Cycles, fuel)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("fuel trap took %v", elapsed)
	}
}

// TestFuelClampedToMaxFuel is the DoS guarantee the fuel budget exists
// for: a request naming an effectively unbounded budget (2^64-1 — far
// past the 2^62 threshold where the VM would lift its step limit
// entirely) is clamped to the server's MaxFuel cap, so the infinite
// loop still fuel-traps instead of pinning the worker forever.
func TestFuelClampedToMaxFuel(t *testing.T) {
	const maxFuel = 300_000
	_, c, done := newTestServer(t, Config{Fuel: 100_000, MaxFuel: maxFuel})
	defer done()
	resp, _, err := c.Run(context.Background(), RunRequest{Source: loopProg, Fuel: math.MaxUint64})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trap == nil || resp.Trap.Class != trapClassFuel {
		t.Fatalf("trap = %+v, want fuel", resp.Trap)
	}
	if resp.Fuel != maxFuel {
		t.Fatalf("effective fuel = %d, want clamped to %d", resp.Fuel, maxFuel)
	}
	// An in-range override is still honoured as-is.
	resp, _, err = c.Run(context.Background(), RunRequest{Source: loopProg, Fuel: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fuel != 200_000 {
		t.Fatalf("effective fuel = %d, want the requested 200000", resp.Fuel)
	}
}

// TestMaxFuelNeverBelowFuel: the defaulting rule keeps the operator's
// own default budget admissible even when -max-fuel is set lower.
func TestMaxFuelNeverBelowFuel(t *testing.T) {
	cfg := New(Config{Fuel: 5_000_000, MaxFuel: 1_000}).Config()
	if cfg.MaxFuel != 5_000_000 {
		t.Fatalf("MaxFuel = %d, want raised to Fuel (5000000)", cfg.MaxFuel)
	}
	if def := New(Config{}).Config().MaxFuel; def != DefaultMaxFuel {
		t.Fatalf("MaxFuel default = %d, want %d", def, DefaultMaxFuel)
	}
}

// TestEscapedSourceWithinBodyCap: a legal source just under
// MaxSourceBytes made of newlines doubles in size when JSON-escaped;
// the body cap must still admit it (the request fails in the compiler,
// not with 413).
func TestEscapedSourceWithinBodyCap(t *testing.T) {
	const maxSource = 1 << 20
	_, c, done := newTestServer(t, Config{MaxSourceBytes: maxSource})
	defer done()
	_, _, err := c.Run(context.Background(),
		RunRequest{Source: strings.Repeat("\n", maxSource-1)})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want an APIError", err)
	}
	if apiErr.Status == http.StatusRequestEntityTooLarge {
		t.Fatal("escaped in-limit source rejected 413 by the body cap")
	}
	if apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (compile failure)", apiErr.Status)
	}
}

// TestSpatialTrap: the canonical overflow is classified spatial in both
// instrumented modes and missed by baseline.
func TestSpatialTrap(t *testing.T) {
	_, c, done := newTestServer(t, Config{})
	defer done()
	ctx := context.Background()
	for _, mode := range []string{"subheap", "wrapped"} {
		resp, _, err := c.Run(ctx, RunRequest{Source: overflowProg, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Trap == nil || resp.Trap.Class != trapClassSpatial {
			t.Fatalf("%s: trap = %+v, want spatial", mode, resp.Trap)
		}
	}
	resp, _, err := c.Run(ctx, RunRequest{Source: overflowProg, Mode: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trap != nil {
		t.Fatalf("baseline flagged the overflow: %+v", resp.Trap)
	}
}

// TestTemporalTrap: a same-type slot-reuse UAF — invisible to metadata
// invalidation, so the spatial modes run it clean — is classified
// temporal under the generation-tagging mode.
func TestTemporalTrap(t *testing.T) {
	const uafProg = `
long *gv;
int main() {
	long *p = (long*)malloc(4 * sizeof(long));
	gv = p;
	free(p);
	long *fresh = (long*)malloc(4 * sizeof(long));
	fresh[0] = 1;
	long *q = gv;
	*q = 2;
	free(fresh);
	return 0;
}`
	_, c, done := newTestServer(t, Config{})
	defer done()
	ctx := context.Background()

	resp, _, err := c.Run(ctx, RunRequest{Source: uafProg, Mode: "ifp-temporal"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trap == nil || resp.Trap.Class != trapClassTemporal || resp.Trap.Kind != "temporal" {
		t.Fatalf("ifp-temporal: trap = %+v, want temporal class", resp.Trap)
	}
	if resp.Counters.GenCheckFails == 0 {
		t.Fatalf("ifp-temporal: GenCheckFails = 0, want a recorded stale generation")
	}
	for _, mode := range []string{"subheap", "hybrid"} {
		resp, _, err := c.Run(ctx, RunRequest{Source: uafProg, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Trap != nil {
			t.Fatalf("%s flagged the type-safe reuse UAF: %+v (spatial behavior changed)", mode, resp.Trap)
		}
	}
}

// TestJulietAndWorkloadEndpoints drives the remaining simulation
// endpoints through the client.
func TestJulietAndWorkloadEndpoints(t *testing.T) {
	_, c, done := newTestServer(t, Config{})
	defer done()
	ctx := context.Background()

	names, err := c.JulietCases(ctx)
	if err != nil || len(names) == 0 {
		t.Fatalf("JulietCases: %v (%d names)", err, len(names))
	}
	jr, err := c.Juliet(ctx, JulietRequest{Case: "CWE122_heap_ptr_arith_bad", Mode: "subheap"})
	if err != nil {
		t.Fatal(err)
	}
	if jr.Verdict != "pass" || !jr.Bad || jr.CWE != "CWE122" {
		t.Fatalf("juliet response %+v", jr)
	}

	wr, err := c.Workload(ctx, WorkloadRequest{Name: "treeadd", Mode: "subheap"})
	if err != nil {
		t.Fatal(err)
	}
	wb, err := c.Workload(ctx, WorkloadRequest{Name: "treeadd", Mode: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	if wr.Checksum != wb.Checksum {
		t.Fatalf("instrumented checksum %#x != baseline %#x", wr.Checksum, wb.Checksum)
	}
	if wr.Counters.Promote == 0 || wb.Counters.Promote != 0 {
		t.Fatalf("promote counters: subheap %d (want > 0), baseline %d (want 0)",
			wr.Counters.Promote, wb.Counters.Promote)
	}
}

// TestMixedConcurrentRequests is the acceptance scenario: a concurrent
// mixed request stream where every run response must match the local
// verdict for its (source, mode).
func TestMixedConcurrentRequests(t *testing.T) {
	_, c, done := newTestServer(t, Config{})
	defer done()
	ctx := context.Background()

	type runCase struct {
		src, mode string
		wantTrap  string // "" for clean
	}
	cases := []runCase{
		{cleanProg, "subheap", ""},
		{cleanProg, "wrapped", ""},
		{overflowProg, "subheap", trapClassSpatial},
		{overflowProg, "wrapped", trapClassSpatial},
		{overflowProg, "baseline", ""},
	}
	// Precompute the local expectations.
	type local struct {
		out  []int64
		exit int64
	}
	want := make([]local, len(cases))
	for i, tc := range cases {
		mode, err := rt.ParseMode(tc.mode)
		if err != nil {
			t.Fatal(err)
		}
		out, exit, _, _ := minic.ExecuteBudget(tc.src, mode, DefaultFuel)
		if out == nil {
			out = []int64{}
		}
		want[i] = local{out, exit}
	}

	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for i, tc := range cases {
			wg.Add(1)
			go func(i int, tc runCase) {
				defer wg.Done()
				resp, _, err := c.Run(ctx, RunRequest{Source: tc.src, Mode: tc.mode})
				if err != nil {
					t.Errorf("%s/%s: %v", tc.mode, tc.wantTrap, err)
					return
				}
				gotTrap := ""
				if resp.Trap != nil {
					gotTrap = resp.Trap.Class
				}
				if gotTrap != tc.wantTrap {
					t.Errorf("%s: trap class %q, want %q", tc.mode, gotTrap, tc.wantTrap)
				}
				if !reflect.DeepEqual(resp.Output, want[i].out) || resp.Exit != want[i].exit {
					t.Errorf("%s: out=%v exit=%d, want out=%v exit=%d",
						tc.mode, resp.Output, resp.Exit, want[i].out, want[i].exit)
				}
			}(i, tc)
		}
		// Interleave the other endpoints.
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, err := c.Juliet(ctx, JulietRequest{Case: "CWE121_stack_direct_bad"}); err != nil {
				t.Error(err)
			}
		}()
		go func() {
			defer wg.Done()
			if err := c.Healthz(ctx); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestMetricsSnapshot checks /metrics moves with traffic and the
// in-flight gauge settles back to zero.
func TestMetricsSnapshot(t *testing.T) {
	_, c, done := newTestServer(t, Config{})
	defer done()
	ctx := context.Background()

	if _, _, err := c.Run(ctx, RunRequest{Source: cleanProg}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Run(ctx, RunRequest{Source: cleanProg}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Run(ctx, RunRequest{Source: loopProg, Fuel: 100_000}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests["run"] != 3 || m.Requests["total"] < 3 {
		t.Fatalf("request counters %v", m.Requests)
	}
	if m.Cache["hits"] != 1 || m.Cache["misses"] != 2 || m.Cache["entries"] != 2 {
		t.Fatalf("cache counters %v", m.Cache)
	}
	if m.Traps["none"] != 1 || m.Traps["fuel"] != 1 {
		t.Fatalf("trap counters %v", m.Traps)
	}
	if m.InFlight != 1 { // the in-flight /metrics request itself
		t.Fatalf("in_flight = %d, want 1 (the metrics request)", m.InFlight)
	}
	var total uint64
	for _, v := range m.Latency {
		total += v
	}
	if total != 3 { // latency is observed after the response is written
		t.Fatalf("latency histogram total = %d, want 3 completed requests", total)
	}
}
