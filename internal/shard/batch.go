package shard

// Batch fan-out: the shard serves the same streaming campaign endpoints
// as one backend (/v1/batch, /v1/grid, /v1/chaos) by scattering the
// campaign's cells across the ring — each cell to the backend owning
// its stable plan key — and merging the backends' NDJSON streams into
// one, in completion order, cell lines passed through byte-for-byte.
// A client cannot tell a shard from a single ifp-serve, and reassembles
// the identical report either way.
//
// Draining: when a backend's stream fails (transport error, truncated
// stream), the cells it never delivered are re-scattered over the
// surviving backends, up to one round per backend. Cells that no
// backend can run are emitted as error cells, so the stream still ends
// with an honest trailer.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"infat/internal/exp"
	"infat/internal/server"
)

// campaignPlan is the slice of exp.Plan / exp.ChaosPlan the fan-out
// needs: the cell count, each cell's routing key, and its identity for
// synthesizing error cells.
type campaignPlan interface {
	NumCells() int
	Key(i int) string
	Meta(i int) exp.CellMeta
}

func (s *Shard) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req server.BatchRequest
	if !s.decodeBatchBody(w, r, &req) {
		return
	}
	plan, err := req.BatchPlan()
	if err != nil {
		writeShardError(w, http.StatusBadRequest, err)
		return
	}
	s.streamScattered(w, r, server.BatchPath, plan, req.Cells, func(cells []int) any {
		sub := req
		sub.Cells = cells
		return sub
	})
}

func (s *Shard) handleGrid(w http.ResponseWriter, r *http.Request) {
	var req server.BatchRequest
	if !s.decodeBatchBody(w, r, &req) {
		return
	}
	plan, err := req.GridPlan()
	if err != nil {
		writeShardError(w, http.StatusBadRequest, err)
		return
	}
	s.streamScattered(w, r, server.GridPath, plan, req.Cells, func(cells []int) any {
		sub := req
		sub.Cells = cells
		return sub
	})
}

func (s *Shard) handleChaos(w http.ResponseWriter, r *http.Request) {
	var req server.ChaosRequest
	if !s.decodeBatchBody(w, r, &req) {
		return
	}
	s.streamScattered(w, r, server.ChaosPath, req.Plan(), req.Cells, func(cells []int) any {
		sub := req
		sub.Cells = cells
		return sub
	})
}

// decodeBatchBody strictly decodes a batch request body, bounded.
func (s *Shard) decodeBatchBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeShardError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	if dec.More() {
		writeShardError(w, http.StatusBadRequest, errors.New("bad request body: trailing data after request object"))
		return false
	}
	return true
}

// validateSubset mirrors the backend's cell-subset rules so a bad
// subset fails fast at the front tier.
func validateSubset(n int, subset []int) ([]int, error) {
	if len(subset) == 0 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	seen := make(map[int]bool, len(subset))
	for _, i := range subset {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("cell %d out of range [0, %d)", i, n)
		}
		if seen[i] {
			return nil, fmt.Errorf("duplicate cell %d", i)
		}
		seen[i] = true
	}
	return subset, nil
}

// streamScattered fans the cells over their ring owners, merges the
// backend streams into one NDJSON response, reassigns cells lost to a
// failed backend, and closes with the merged trailer.
func (s *Shard) streamScattered(w http.ResponseWriter, r *http.Request, path string, plan campaignPlan, subset []int, subReq func(cells []int) any) {
	cells, err := validateSubset(plan.NumCells(), subset)
	if err != nil {
		writeShardError(w, http.StatusBadRequest, err)
		return
	}
	s.metrics.batchStreams.Add(1)
	ctx := r.Context()

	w.Header().Set("Content-Type", server.NDJSONContentType)
	w.Header().Set(server.CellsHeader, strconv.Itoa(len(cells)))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	var mu sync.Mutex // serializes receipt tracking and response writes
	received := make([]bool, plan.NumCells())
	completed, failed := 0, 0
	emitLocked := func(line []byte) {
		if ctx.Err() != nil {
			return
		}
		w.Write(line)
		w.Write([]byte("\n"))
		if flusher != nil {
			flusher.Flush()
		}
	}
	// deliver merges one relayed cell line: deduplicated on seq (a
	// backend that errored after delivering some cells gets only its
	// missing cells reassigned, but dedup keeps even a misbehaving
	// backend from corrupting the merged stream).
	deliver := func(seq int, line []byte, isErr bool) {
		mu.Lock()
		defer mu.Unlock()
		if seq < 0 || seq >= len(received) || received[seq] {
			return
		}
		received[seq] = true
		if isErr {
			failed++
		} else {
			completed++
		}
		s.metrics.batchCells.Add(1)
		emitLocked(line)
	}

	pending := cells
	excluded := make(map[int]bool, len(s.backends))
	for round := 0; round <= len(s.backends) && len(pending) > 0 && ctx.Err() == nil; round++ {
		if round > 0 {
			s.metrics.reassignedCells.Add(uint64(len(pending)))
		}
		parts := make(map[int][]int)
		for _, i := range pending {
			bi := s.ring.owner(plan.Key(i), func(b int) bool { return !excluded[b] && s.backends[b].isUp() })
			if bi < 0 {
				continue // orphan: retried next round if a backend recovers, else error cell
			}
			parts[bi] = append(parts[bi], i)
		}
		if len(parts) == 0 {
			break
		}
		var wg sync.WaitGroup
		var exMu sync.Mutex
		for bi, part := range parts {
			wg.Add(1)
			go func(bi int, part []int) {
				defer wg.Done()
				if err := s.relayStream(ctx, s.backends[bi], path, subReq(part), deliver); err != nil {
					s.noteFailure(s.backends[bi])
					exMu.Lock()
					excluded[bi] = true
					exMu.Unlock()
				}
			}(bi, part)
		}
		wg.Wait()
		var rest []int
		mu.Lock()
		for _, i := range pending {
			if !received[i] {
				rest = append(rest, i)
			}
		}
		mu.Unlock()
		pending = rest
	}

	if ctx.Err() != nil {
		return // client gone: truncated stream, no trailer
	}
	// Cells nobody could run become explicit error cells, so the client
	// sees a complete, honest accounting instead of silent gaps.
	for _, i := range pending {
		m := plan.Meta(i)
		cell := server.BatchCell{Seq: m.Seq, Kind: m.Kind, Workload: m.Workload, Config: m.Config,
			Error: "no backend available"}
		mu.Lock()
		if !received[i] {
			received[i] = true
			failed++
			emitLocked(mustShardJSON(cell))
		}
		mu.Unlock()
	}
	mu.Lock()
	defer mu.Unlock()
	emitLocked(mustShardJSON(server.BatchTrailer{
		Done:      true,
		Cells:     len(cells),
		Completed: completed,
		Failed:    failed,
	}))
}

// relayStream consumes one backend's NDJSON stream, handing every cell
// line (with its decoded seq) to deliver. It fails on transport errors,
// protocol violations, and truncation — the cases where the backend's
// remaining cells need a new home.
func (s *Shard) relayStream(ctx context.Context, b *backend, path string, req any, deliver func(seq int, line []byte, isErr bool)) error {
	sawTrailer := false
	err := b.client.StreamNDJSON(ctx, path, req, func(line []byte) error {
		var probe struct {
			Done  bool   `json:"done"`
			Seq   int    `json:"seq"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return fmt.Errorf("shard: bad stream line from %s: %w", b.url, err)
		}
		if probe.Done {
			sawTrailer = true
			return nil
		}
		deliver(probe.Seq, line, probe.Error != "")
		return nil
	})
	if err != nil {
		return err
	}
	if !sawTrailer {
		return fmt.Errorf("shard: %s: %w", b.url, server.ErrTruncatedStream)
	}
	return nil
}

func mustShardJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err) // plain data types: a marshal failure is a programming error
	}
	return b
}
