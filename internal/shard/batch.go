package shard

// Batch fan-out: the shard serves the same streaming campaign endpoints
// as one backend (/v1/batch, /v1/grid, /v1/chaos) by scattering the
// campaign's cells across the ring — each cell to the backend owning
// its stable plan key — and merging the backends' NDJSON streams into
// one, in completion order, cell lines passed through byte-for-byte.
// A client cannot tell a shard from a single ifp-serve, and reassembles
// the identical report either way.
//
// Draining: when a backend's stream fails (transport error, truncated
// stream, corrupt line), the cells it never delivered are re-scattered
// over the surviving backends, up to one round per backend. Within a
// round, cells still undelivered HedgeAfter into the dispatch are
// hedged — re-sent to a second backend while the primary keeps running
// — and whichever answer lands first wins (seq dedup drops the other).
// Cells that no backend can run are emitted as error cells, so the
// stream still ends with an honest trailer.
//
// Trust boundary: backend stream lines are validated, not relayed
// blindly. A line must decode, carry a seq the backend was actually
// assigned, match the plan's cell identity for that seq, and have the
// right payload shape — anything else is ErrCorruptLine, which fails
// the relay and reassigns the backend's remaining cells. Validation is
// what makes hedging and failover safe against a byte-corrupting
// backend, not just a dead one.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"infat/internal/exp"
	"infat/internal/server"
)

// ErrCorruptLine reports a backend stream line that failed validation:
// undecodable JSON, a seq outside the backend's assigned part, a cell
// identity that contradicts the plan, or a malformed payload. The relay
// treats it like a transport failure — the backend's remaining cells
// get a new home — and never forwards the line to the client.
var ErrCorruptLine = errors.New("shard: corrupt stream line")

// campaignPlan is the slice of exp.Plan / exp.ChaosPlan the fan-out
// needs: the cell count, each cell's routing key, and its identity for
// synthesizing error cells.
type campaignPlan interface {
	NumCells() int
	Key(i int) string
	Meta(i int) exp.CellMeta
}

func (s *Shard) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req server.BatchRequest
	if !s.decodeBatchBody(w, r, &req) {
		return
	}
	plan, err := req.BatchPlan()
	if err != nil {
		writeShardError(w, http.StatusBadRequest, err)
		return
	}
	s.streamScattered(w, r, server.BatchPath, plan, req.Cells, func(cells []int) any {
		sub := req
		sub.Cells = cells
		return sub
	})
}

func (s *Shard) handleGrid(w http.ResponseWriter, r *http.Request) {
	var req server.BatchRequest
	if !s.decodeBatchBody(w, r, &req) {
		return
	}
	plan, err := req.GridPlan()
	if err != nil {
		writeShardError(w, http.StatusBadRequest, err)
		return
	}
	s.streamScattered(w, r, server.GridPath, plan, req.Cells, func(cells []int) any {
		sub := req
		sub.Cells = cells
		return sub
	})
}

func (s *Shard) handleChaos(w http.ResponseWriter, r *http.Request) {
	var req server.ChaosRequest
	if !s.decodeBatchBody(w, r, &req) {
		return
	}
	s.streamScattered(w, r, server.ChaosPath, req.Plan(), req.Cells, func(cells []int) any {
		sub := req
		sub.Cells = cells
		return sub
	})
}

// decodeBatchBody strictly decodes a batch request body, bounded.
func (s *Shard) decodeBatchBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeShardError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	if dec.More() {
		writeShardError(w, http.StatusBadRequest, errors.New("bad request body: trailing data after request object"))
		return false
	}
	return true
}

// validateSubset mirrors the backend's cell-subset rules so a bad
// subset fails fast at the front tier.
func validateSubset(n int, subset []int) ([]int, error) {
	if len(subset) == 0 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	seen := make(map[int]bool, len(subset))
	for _, i := range subset {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("cell %d out of range [0, %d)", i, n)
		}
		if seen[i] {
			return nil, fmt.Errorf("duplicate cell %d", i)
		}
		seen[i] = true
	}
	return subset, nil
}

// streamScattered fans the cells over their ring owners, merges the
// backend streams into one NDJSON response, reassigns cells lost to a
// failed backend, and closes with the merged trailer.
func (s *Shard) streamScattered(w http.ResponseWriter, r *http.Request, path string, plan campaignPlan, subset []int, subReq func(cells []int) any) {
	cells, err := validateSubset(plan.NumCells(), subset)
	if err != nil {
		writeShardError(w, http.StatusBadRequest, err)
		return
	}
	s.metrics.batchStreams.Add(1)
	ctx := r.Context()

	w.Header().Set("Content-Type", server.NDJSONContentType)
	w.Header().Set(server.CellsHeader, strconv.Itoa(len(cells)))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	var mu sync.Mutex // serializes receipt tracking and response writes
	received := make([]bool, plan.NumCells())
	completed, failed := 0, 0
	emitLocked := func(line []byte) {
		if ctx.Err() != nil {
			return
		}
		w.Write(line)
		w.Write([]byte("\n"))
		if flusher != nil {
			flusher.Flush()
		}
	}
	// deliver merges one relayed cell line: deduplicated on seq. Dedup is
	// the invariant that makes hedging and reassignment safe — whichever
	// copy of a cell arrives first wins, every later copy (hedge answer,
	// duplicated backend line) is counted and dropped.
	deliver := func(seq int, line []byte, isErr bool) {
		mu.Lock()
		defer mu.Unlock()
		if seq < 0 || seq >= len(received) {
			return
		}
		if received[seq] {
			s.metrics.dupSuppressed.Add(1)
			return
		}
		received[seq] = true
		if isErr {
			failed++
		} else {
			completed++
		}
		s.metrics.batchCells.Add(1)
		emitLocked(line)
	}

	var exMu sync.Mutex
	excluded := make(map[int]bool, len(s.backends))
	isExcluded := func(b int) bool {
		exMu.Lock()
		defer exMu.Unlock()
		return excluded[b]
	}
	// runPart relays one backend's cell subset under the relay timeout,
	// feeding the health verdict and breaker with the outcome. A failed
	// relay excludes the backend for the rest of this campaign — its
	// undelivered cells are picked up by the next round.
	runPart := func(wg *sync.WaitGroup, bi int, part []int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rctx := ctx
			if s.cfg.RelayTimeout > 0 {
				var cancel context.CancelFunc
				rctx, cancel = context.WithTimeout(ctx, s.cfg.RelayTimeout)
				defer cancel()
			}
			if err := s.relayStream(rctx, s.backends[bi], path, plan, part, subReq(part), deliver); err != nil {
				s.noteFailure(s.backends[bi])
				exMu.Lock()
				excluded[bi] = true
				exMu.Unlock()
				return
			}
			s.noteSuccess(s.backends[bi])
		}()
	}

	pending := cells
	for round := 0; round <= len(s.backends) && len(pending) > 0 && ctx.Err() == nil; round++ {
		if round > 0 {
			s.metrics.reassignedCells.Add(uint64(len(pending)))
		}
		parts := make(map[int][]int)
		for _, i := range pending {
			bi := s.ring.owner(plan.Key(i), func(b int) bool { return !excluded[b] && s.backends[b].eligible() })
			if bi < 0 {
				continue // orphan: retried next round if a backend recovers, else error cell
			}
			parts[bi] = append(parts[bi], i)
		}
		if len(parts) == 0 {
			break
		}
		var wg sync.WaitGroup
		for bi, part := range parts {
			runPart(&wg, bi, part)
		}
		// Hedge watchdog: if stragglers remain HedgeAfter into the round,
		// re-dispatch each undelivered cell to a backend other than its
		// primary. The primary keeps running — first answer wins, dedup
		// absorbs the loser — so a stalled-but-alive backend costs the
		// campaign one hedge budget, not a relay timeout.
		roundDone := make(chan struct{})
		var hedgeWG sync.WaitGroup
		if s.cfg.HedgeAfter > 0 && len(s.backends) > 1 {
			hedgeWG.Add(1)
			go func() {
				defer hedgeWG.Done()
				t := time.NewTimer(s.cfg.HedgeAfter)
				defer t.Stop()
				select {
				case <-roundDone:
					return
				case <-ctx.Done():
					return
				case <-t.C:
				}
				hedgeParts := make(map[int][]int)
				mu.Lock()
				for bi, part := range parts {
					for _, i := range part {
						if received[i] {
							continue
						}
						hb := s.ring.owner(plan.Key(i), func(b int) bool {
							return b != bi && !isExcluded(b) && s.backends[b].eligible()
						})
						if hb >= 0 {
							hedgeParts[hb] = append(hedgeParts[hb], i)
						}
					}
				}
				mu.Unlock()
				var hwg sync.WaitGroup
				for bi, part := range hedgeParts {
					s.metrics.hedgedCells.Add(uint64(len(part)))
					runPart(&hwg, bi, part)
				}
				hwg.Wait()
			}()
		}
		wg.Wait()
		close(roundDone)
		hedgeWG.Wait()
		var rest []int
		mu.Lock()
		for _, i := range pending {
			if !received[i] {
				rest = append(rest, i)
			}
		}
		mu.Unlock()
		pending = rest
	}

	if ctx.Err() != nil {
		return // client gone: truncated stream, no trailer
	}
	// Cells nobody could run are shed: emitted as explicit error cells,
	// so the client sees a complete, honest accounting instead of silent
	// gaps.
	for _, i := range pending {
		m := plan.Meta(i)
		cell := server.BatchCell{Seq: m.Seq, Kind: m.Kind, Workload: m.Workload, Config: m.Config,
			Error: "no backend available"}
		mu.Lock()
		if !received[i] {
			received[i] = true
			failed++
			s.metrics.shedCells.Add(1)
			emitLocked(mustShardJSON(cell))
		}
		mu.Unlock()
	}
	mu.Lock()
	defer mu.Unlock()
	emitLocked(mustShardJSON(server.BatchTrailer{
		Done:      true,
		Cells:     len(cells),
		Completed: completed,
		Failed:    failed,
	}))
}

// relayStream consumes one backend's NDJSON stream, validating every
// cell line against the plan and the backend's assigned part before
// handing it to deliver. It fails on transport errors, truncation, and
// corrupt lines — the cases where the backend's remaining cells need a
// new home. Valid lines are relayed byte-for-byte, so the client's
// reassembled report stays identical to a serial run's.
func (s *Shard) relayStream(ctx context.Context, b *backend, path string, plan campaignPlan, part []int, req any, deliver func(seq int, line []byte, isErr bool)) error {
	assigned := make(map[int]bool, len(part))
	for _, i := range part {
		assigned[i] = true
	}
	isChaos := path == server.ChaosPath
	sawTrailer := false
	err := b.client.StreamNDJSON(ctx, path, req, func(line []byte) error {
		var probe struct {
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			s.metrics.corruptLines.Add(1)
			return fmt.Errorf("shard: %s: %w: undecodable line: %v", b.url, ErrCorruptLine, err)
		}
		if probe.Done {
			sawTrailer = true
			return nil
		}
		var cell server.BatchCell
		if err := json.Unmarshal(line, &cell); err != nil {
			s.metrics.corruptLines.Add(1)
			return fmt.Errorf("shard: %s: %w: undecodable cell: %v", b.url, ErrCorruptLine, err)
		}
		if err := validateCell(plan, assigned, &cell, isChaos); err != nil {
			s.metrics.corruptLines.Add(1)
			return fmt.Errorf("shard: %s: %w: %v", b.url, ErrCorruptLine, err)
		}
		deliver(cell.Seq, line, cell.Error != "")
		return nil
	})
	if err != nil {
		return err
	}
	if !sawTrailer {
		return fmt.Errorf("shard: %s: %w", b.url, server.ErrTruncatedStream)
	}
	return nil
}

// validateCell enforces the stream contract on one decoded cell line: a
// seq the backend was assigned (which implies in-plan range), the
// plan's identity for that seq, and a payload whose shape matches the
// campaign type. A violation means the backend answered a question it
// was not asked — a corrupted stream, not a failed simulation.
func validateCell(plan campaignPlan, assigned map[int]bool, cell *server.BatchCell, isChaos bool) error {
	if !assigned[cell.Seq] {
		return fmt.Errorf("cell seq %d not in this backend's assignment", cell.Seq)
	}
	m := plan.Meta(cell.Seq)
	if cell.Kind != m.Kind || cell.Workload != m.Workload || cell.Config != m.Config {
		return fmt.Errorf("cell seq %d identity %s|%s|%s contradicts plan %s|%s|%s",
			cell.Seq, cell.Kind, cell.Workload, cell.Config, m.Kind, m.Workload, m.Config)
	}
	if cell.Error != "" {
		return nil // error cells carry no payload
	}
	if isChaos {
		if cell.Chaos == nil || cell.Result != nil {
			return fmt.Errorf("cell seq %d has a malformed chaos payload", cell.Seq)
		}
		return nil
	}
	if cell.Result == nil || cell.Chaos != nil {
		return fmt.Errorf("cell seq %d has a malformed result payload", cell.Seq)
	}
	return nil
}

func mustShardJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err) // plain data types: a marshal failure is a programming error
	}
	return b
}
