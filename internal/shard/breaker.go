package shard

// Per-backend circuit breakers. Health probes notice a dead backend
// within an interval or two, but during a partial failure — a backend
// that accepts connections and then resets, stalls, or corrupts streams
// — the probe keeps passing while every real request burns a timeout.
// The breaker closes that gap from the request side: consecutive
// request failures open it, an open breaker routes traffic past the
// backend immediately (no timeout paid), and after a cooldown a single
// half-open probe request decides between closing it and re-opening.
//
// The breaker composes with (not replaces) the up/down health verdict:
// eligibility for routing is isUp() && breaker.allow(). Health-probe
// results feed the same breaker, so a recovered backend is closed again
// by the background probes even with no client traffic to prove it.

import (
	"sync"
	"time"
)

// Breaker states as reported in /metrics.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// Defaults for the breaker Config zero values.
const (
	// DefaultBreakerThreshold is the consecutive-failure count that opens
	// a breaker: above the single blip unary failover already absorbs,
	// low enough that a misbehaving backend stops costing timeouts fast.
	DefaultBreakerThreshold = 3
	// DefaultBreakerCooldown is how long an open breaker refuses traffic
	// before admitting one half-open probe request.
	DefaultBreakerCooldown = 5 * time.Second
)

// breaker is one backend's circuit breaker: closed (healthy) → open
// (threshold consecutive failures; all traffic refused) → half-open
// (cooldown elapsed; exactly one probe request admitted) → closed on
// probe success, open again on probe failure.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	mu       sync.Mutex
	state    string
	fails    int       // consecutive failures
	openedAt time.Time // when state last became open
	probing  bool      // half-open probe slot reserved
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		state:     BreakerClosed,
	}
}

// allow reports whether a request may go to this backend. It mutates:
// an open breaker past its cooldown transitions to half-open, and a
// half-open breaker reserves its single probe slot for the caller —
// so a true return must be followed by the request and then one
// onSuccess/onFailure call. ring.owner returns the first eligible
// backend, so a reservation handed out here is always consumed.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return true
	}
}

// onSuccess records a successful exchange: the breaker closes and the
// consecutive-failure count resets, whatever state it was in.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// onFailure records a failed exchange. A half-open probe failure
// re-opens immediately; a closed breaker opens at the threshold.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	b.probing = false
	if b.state == BreakerHalfOpen || b.fails >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
	}
}

// snapshot returns the state and consecutive-failure count for /metrics.
func (b *breaker) snapshot() (state string, fails int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.fails
}

// prng is the shard's private splitmix64 stream (same idiom as
// internal/chaos): deterministic under Config.Seed and independent of
// math/rand global state, so probe jitter and any routing randomness
// reproduce exactly across runs — the property the netchaos campaign
// gates on.
type prng struct{ s uint64 }

func newPrng(seed uint64) *prng { return &prng{s: seed} }

func (r *prng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// intn returns a deterministic value in [0, n).
func (r *prng) intn(n int) int { return int(r.next() % uint64(n)) }

// probeDelay is the wait before a backend's next health probe: the base
// interval, doubled per consecutive failure up to 8x (a flapping or
// dead backend is probed less aggressively), plus a seeded jitter of up
// to a quarter interval. The jitter desynchronizes the per-backend
// probe loops — without it every loop ticks in lockstep and the fleet
// absorbs N simultaneous probes every interval, a thundering herd that
// grows with fleet size and lands exactly when a recovering backend is
// most fragile.
func probeDelay(base time.Duration, fails int, rng *prng) time.Duration {
	d := base
	for i := 0; i < fails && d < 8*base; i++ {
		d *= 2
	}
	if d > 8*base {
		d = 8 * base
	}
	if j := int(base / 4); j > 0 {
		d += time.Duration(rng.intn(j))
	}
	return d
}
