package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// hashKey maps a routing key onto the ring's coordinate space: the
// first 8 bytes of sha256(key), big-endian. sha256 because the keys are
// attacker-influenced (program source hashes through here) and the ring
// must stay balanced under adversarial input.
func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// ring is a consistent-hash ring over backend indexes. Each backend
// owns `replicas` virtual points, so keys spread evenly and the loss of
// one backend redistributes only its own arc — the other backends keep
// their key subsets (and therefore their interner and result-cache
// heat) untouched.
type ring struct {
	hashes   []uint64 // sorted virtual points
	backends []int    // backends[i] owns hashes[i]
}

// newRing builds the ring for n backends named by name, with the given
// virtual points per backend.
func newRing(n, replicas int, name func(int) string) *ring {
	r := &ring{
		hashes:   make([]uint64, 0, n*replicas),
		backends: make([]int, 0, n*replicas),
	}
	type point struct {
		hash    uint64
		backend int
	}
	points := make([]point, 0, n*replicas)
	for b := 0; b < n; b++ {
		for v := 0; v < replicas; v++ {
			points = append(points, point{
				hash:    hashKey(name(b) + "#" + strconv.Itoa(v)),
				backend: b,
			})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// Deterministic tie-break so every process building the same ring
		// routes identically even on (astronomically unlikely) collisions.
		return points[i].backend < points[j].backend
	})
	for _, p := range points {
		r.hashes = append(r.hashes, p.hash)
		r.backends = append(r.backends, p.backend)
	}
	return r
}

// owner returns the backend index owning key among the backends eligible
// reports true for: the first eligible point clockwise of hash(key),
// wrapping. Returns -1 when no eligible backend exists.
func (r *ring) owner(key string, eligible func(int) bool) int {
	n := len(r.hashes)
	if n == 0 {
		return -1
	}
	h := hashKey(key)
	start := sort.Search(n, func(i int) bool { return r.hashes[i] >= h })
	for i := 0; i < n; i++ {
		b := r.backends[(start+i)%n]
		if eligible(b) {
			return b
		}
	}
	return -1
}
