// Package shard is the scale-out front tier over a fleet of ifp-serve
// backends (cmd/ifp-shard): one HTTP endpoint that consistently hashes
// requests across N backend processes and merges their answers.
//
// Routing is by content, not by connection: /v1/run routes on
// sha256(source), /v1/juliet on the case name, /v1/workload on the
// workload name, and the batch endpoints scatter each campaign cell by
// its stable plan key (exp.Plan.Key). Consistent hashing with virtual
// nodes means every backend sees a stable subset of the key space, so
// each backend's program interner and result LRU stay hot on their own
// slice of the workload — the property that makes N backends behave
// like one big cache rather than N cold ones.
//
// Backends are health-checked continuously; a backend that fails
// DownAfter consecutive probes is drained — new requests route past it,
// in-flight batch cells it never delivered are reassigned to the
// survivors — and it rejoins automatically on the first healthy probe.
package shard

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"infat/internal/server"
)

// Defaults for Config zero values.
const (
	DefaultReplicas       = 64
	DefaultHealthInterval = time.Second
	DefaultHealthTimeout  = 2 * time.Second
	DefaultDownAfter      = 2
	DefaultMaxBodyBytes   = 8 << 20
	// DefaultHedgeAfter is the straggler budget per scatter round: cells
	// still undelivered this long after dispatch are hedged to a second
	// backend (dedup-by-seq makes the duplicate answer safe to absorb).
	DefaultHedgeAfter = 10 * time.Second
	// DefaultRelayTimeout bounds one backend relay stream, so a backend
	// that accepts the campaign and then stalls (a blackhole, not a
	// crash) is cut off and its cells reassigned rather than hanging the
	// whole merged stream.
	DefaultRelayTimeout = 2 * time.Minute
	// DefaultSeed seeds the shard's deterministic jitter stream.
	DefaultSeed = 1
)

// Config parameterizes a Shard. Backends is required; every other zero
// value takes the documented default.
type Config struct {
	// Backends are the ifp-serve base URLs, e.g.
	// ["http://10.0.0.1:8080", "http://10.0.0.2:8080"]. At least one is
	// required; order is irrelevant to routing (the ring hashes URLs).
	Backends []string
	// Replicas is the virtual-node count per backend on the hash ring
	// (0 = DefaultReplicas). More replicas smooth the key distribution.
	Replicas int
	// HealthInterval is the probe period (0 = DefaultHealthInterval).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (0 = DefaultHealthTimeout).
	HealthTimeout time.Duration
	// DownAfter is the consecutive probe failures that mark a backend
	// down (0 = DefaultDownAfter).
	DownAfter int
	// MaxBodyBytes bounds proxied request bodies (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// BreakerThreshold is the consecutive request failures that open a
	// backend's circuit breaker (0 = DefaultBreakerThreshold).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses traffic before
	// admitting one half-open probe (0 = DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// HedgeAfter is the straggler budget before undelivered batch cells
	// are hedged to a second backend (0 = DefaultHedgeAfter, < 0 disables
	// hedging).
	HedgeAfter time.Duration
	// RelayTimeout bounds one backend relay stream during a batch
	// fan-out (0 = DefaultRelayTimeout, < 0 disables the bound).
	RelayTimeout time.Duration
	// Seed seeds the shard's deterministic jitter (probe
	// desynchronization). 0 = DefaultSeed, so runs reproduce by default.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = DefaultHealthInterval
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = DefaultHealthTimeout
	}
	if c.DownAfter <= 0 {
		c.DownAfter = DefaultDownAfter
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = DefaultHedgeAfter
	}
	if c.RelayTimeout == 0 {
		c.RelayTimeout = DefaultRelayTimeout
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// backend is one ifp-serve process behind the ring.
type backend struct {
	url    string
	client *server.Client
	// fails counts consecutive failed health probes; up flips to false
	// at DownAfter and back to true on the first success. A transport
	// error on a proxied request also counts one failure, so a crashed
	// backend starts draining before the next probe tick.
	fails atomic.Int32
	up    atomic.Bool
	// brk is the request-side circuit breaker; routing eligibility is
	// isUp() && brk.allow(), so either signal drains the backend.
	brk *breaker
}

func (b *backend) isUp() bool { return b.up.Load() }

// eligible is the routing predicate shared by the unary and batch
// paths. It mutates (a half-open breaker reserves its probe slot), so
// callers must actually send to a backend this admits.
func (b *backend) eligible() bool { return b.isUp() && b.brk.allow() }

// shardMetrics are the front tier's own counters, reported under
// "shard" in /metrics alongside the backend aggregate.
type shardMetrics struct {
	proxied         atomic.Uint64 // unary requests forwarded
	failovers       atomic.Uint64 // unary retries on a different backend
	noBackend       atomic.Uint64 // requests failed with no backend available
	batchStreams    atomic.Uint64 // batch/grid/chaos fan-outs started
	batchCells      atomic.Uint64 // cells merged into client streams
	reassignedCells atomic.Uint64 // cells re-scattered after a backend loss
	hedgedCells     atomic.Uint64 // straggler cells re-dispatched to a second backend
	shedCells       atomic.Uint64 // cells emitted as error cells (no backend could run them)
	corruptLines    atomic.Uint64 // backend stream lines rejected by validation
	dupSuppressed   atomic.Uint64 // duplicate cell lines dropped by seq dedup
	transitions     atomic.Uint64 // backend up/down state changes
}

// Shard is the front tier: an http.Handler serving the same API surface
// as one ifp-serve, fanned over Config.Backends. Construct with New;
// Close stops the health loop.
type Shard struct {
	cfg      Config
	backends []*backend
	ring     *ring
	mux      *http.ServeMux
	metrics  shardMetrics

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a Shard over cfg.Backends and starts its health loop.
// Backends start optimistically up: a fleet that is still booting
// serves as soon as the first probe (or first proxied request) settles
// the truth, and unary failover covers the window.
func New(cfg Config) (*Shard, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("shard: at least one backend required")
	}
	seen := make(map[string]bool, len(cfg.Backends))
	s := &Shard{cfg: cfg, mux: http.NewServeMux(), stop: make(chan struct{})}
	for _, u := range cfg.Backends {
		if seen[u] {
			return nil, fmt.Errorf("shard: duplicate backend %q", u)
		}
		seen[u] = true
		b := &backend{
			url:    u,
			client: server.NewClient(u),
			brk:    newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		}
		b.up.Store(true)
		s.backends = append(s.backends, b)
	}
	s.ring = newRing(len(s.backends), cfg.Replicas, func(i int) string { return s.backends[i].url })

	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/juliet", s.handleJuliet)
	s.mux.HandleFunc("GET /v1/juliet", s.handleJulietList)
	s.mux.HandleFunc("POST /v1/workload", s.handleWorkload)
	s.mux.HandleFunc("POST "+server.BatchPath, s.handleBatch)
	s.mux.HandleFunc("POST "+server.GridPath, s.handleGrid)
	s.mux.HandleFunc("POST "+server.ChaosPath, s.handleChaos)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)

	// One probe loop per backend, each with its own seeded jitter stream,
	// so probes never tick in lockstep across the fleet.
	for i := range s.backends {
		s.wg.Add(1)
		go s.probeLoop(i, s.backends[i])
	}
	return s, nil
}

// Close stops the health loop. In-flight requests are unaffected.
func (s *Shard) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// ServeHTTP dispatches to the front-tier handlers. A propagated client
// deadline (server.DeadlineHeader) becomes this request's context
// deadline, so every outgoing call the handlers make re-stamps the
// shrinking remainder downstream — the shard is a hop in the deadline
// chain, not a reset point.
func (s *Shard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d := server.ParseDeadlineHeader(r.Header.Get(server.DeadlineHeader)); d > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.mux.ServeHTTP(w, r)
}

// UpBackends returns the URLs currently routed to, for observability.
func (s *Shard) UpBackends() []string {
	var up []string
	for _, b := range s.backends {
		if b.isUp() {
			up = append(up, b.url)
		}
	}
	return up
}

// probeLoop health-checks one backend forever. Each backend has its own
// loop and jitter stream: the delay between probes is the interval plus
// seeded jitter, doubled per consecutive failure (see probeDelay), so
// fleet probes are desynchronized and a dead backend is probed with
// backoff instead of hammered every tick.
func (s *Shard) probeLoop(idx int, b *backend) {
	defer s.wg.Done()
	rng := newPrng(s.cfg.Seed + uint64(idx)*0x9E3779B97F4A7C15)
	t := time.NewTimer(probeDelay(s.cfg.HealthInterval, 0, rng))
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		s.probe(b)
		t.Reset(probeDelay(s.cfg.HealthInterval, int(b.fails.Load()), rng))
	}
}

func (s *Shard) probe(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.HealthTimeout)
	defer cancel()
	probe := *b.client
	probe.NoRetry = true // the loop itself is the retry policy
	if err := probe.Healthz(ctx); err != nil {
		s.noteFailure(b)
		return
	}
	s.noteSuccess(b)
}

// noteSuccess records one successful probe or proxied exchange: the
// failure streak resets, the backend rejoins the ring, and its breaker
// closes.
func (s *Shard) noteSuccess(b *backend) {
	b.fails.Store(0)
	if !b.up.Swap(true) {
		s.metrics.transitions.Add(1)
	}
	b.brk.onSuccess()
}

// noteFailure records one failed probe or proxied transport error: it
// counts toward both the health verdict (down at DownAfter) and the
// circuit breaker (open at BreakerThreshold).
func (s *Shard) noteFailure(b *backend) {
	if int(b.fails.Add(1)) >= s.cfg.DownAfter {
		if b.up.Swap(false) {
			s.metrics.transitions.Add(1)
		}
	}
	b.brk.onFailure()
}

// routeKey computes the unary routing keys. Namespaced so a workload
// named like a Juliet case still owns its own ring arc.
func runRouteKey(source string) string {
	h := sha256.Sum256([]byte(source))
	return fmt.Sprintf("run|%x", h)
}

// readBody drains a bounded request body.
func (s *Shard) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeShardError(w, http.StatusRequestEntityTooLarge, err)
		return nil, false
	}
	return body, true
}

func (s *Shard) handleRun(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	// Decode only the routing field; the owning backend performs the
	// strict validation, so shard and backend never disagree on what a
	// valid request is.
	var req struct {
		Source string `json:"source"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeShardError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	s.proxy(w, r, runRouteKey(req.Source), "/v1/run", body)
}

func (s *Shard) handleJuliet(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Case string `json:"case"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeShardError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	s.proxy(w, r, "juliet|"+req.Case, "/v1/juliet", body)
}

func (s *Shard) handleJulietList(w http.ResponseWriter, r *http.Request) {
	// The list is identical on every backend (the generated suite), so
	// any up backend may answer.
	s.proxy(w, r, "juliet-list", "/v1/juliet", nil)
}

func (s *Shard) handleWorkload(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeShardError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	s.proxy(w, r, "workload|"+req.Name, "/v1/workload", body)
}

// proxy forwards one unary request to the key's owner, failing over to
// the next ring backend on transport errors only. HTTP statuses —
// including 503 back-pressure — are the backend's answer and pass
// through untouched (with their Retry-After hints), so end-to-end retry
// stays the client's decision and a saturated fleet is visible as such.
func (s *Shard) proxy(w http.ResponseWriter, r *http.Request, key, path string, body []byte) {
	tried := make(map[int]bool)
	first := true
	for {
		bi := s.ring.owner(key, func(i int) bool { return !tried[i] && s.backends[i].eligible() })
		if bi < 0 {
			s.metrics.noBackend.Add(1)
			writeShardError(w, http.StatusBadGateway, errors.New("no backend available"))
			return
		}
		tried[bi] = true
		if !first {
			s.metrics.failovers.Add(1)
		}
		first = false
		if s.forward(w, r, s.backends[bi], path, body) {
			s.metrics.proxied.Add(1)
			return
		}
		// Transport failure: count it toward the health verdict and try
		// the next owner.
		s.noteFailure(s.backends[bi])
	}
}

// forward performs one proxied exchange, copying the backend's status,
// relevant headers, and body through verbatim. It reports false only on
// transport errors, where no response bytes were produced and failover
// is safe.
func (s *Shard) forward(w http.ResponseWriter, r *http.Request, b *backend, path string, body []byte) bool {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, b.url+path, rd)
	if err != nil {
		writeShardError(w, http.StatusInternalServerError, err)
		return true // not a transport failure: failing over cannot help
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Re-stamp the remaining deadline budget for the backend: the shard's
	// context already carries the client's propagated deadline (if any),
	// so the value sent downstream only ever shrinks.
	server.SetDeadlineHeader(req.Header, r.Context())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		if r.Context().Err() != nil {
			// The client gave up, not the backend: stop failing over.
			writeShardError(w, http.StatusBadGateway, err)
			return true
		}
		return false
	}
	defer resp.Body.Close()
	s.noteSuccess(b)
	for _, h := range []string{"Content-Type", server.CacheHeader, server.MemoHeader, server.RetryAfterHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

func (s *Shard) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Flat string map: the bundled client's Healthz decodes exactly this
	// shape, so the shard is probeable by the same WaitReady loop as a
	// backend.
	resp := map[string]string{"status": "ok"}
	up := 0
	for _, b := range s.backends {
		state := "down"
		if b.isUp() {
			state = "up"
			up++
		}
		resp[b.url] = state
	}
	status := http.StatusOK
	if up == 0 {
		resp["status"] = "degraded"
		status = http.StatusServiceUnavailable
	}
	writeShardJSON(w, status, resp)
}

// MetricsResponse is the shard's GET /metrics body: the front tier's
// own counters, each backend's breaker/health state, the summed backend
// snapshot, and each backend's raw snapshot (or probe error) keyed by
// URL.
type MetricsResponse struct {
	Shard     map[string]uint64        `json:"shard"`
	Breakers  map[string]BreakerStatus `json:"breakers"`
	Aggregate server.MetricsSnapshot   `json:"aggregate"`
	Backends  map[string]any           `json:"backends"`
}

// BreakerStatus is one backend's routing state in /metrics: the circuit
// breaker's state machine position and consecutive-failure count, plus
// the health-probe up/down verdict.
type BreakerStatus struct {
	State string `json:"state"` // closed | open | half-open
	Fails int    `json:"fails"`
	Up    bool   `json:"up"`
}

func (s *Shard) handleMetrics(w http.ResponseWriter, r *http.Request) {
	resp := MetricsResponse{
		Shard: map[string]uint64{
			"proxied":          s.metrics.proxied.Load(),
			"failovers":        s.metrics.failovers.Load(),
			"no_backend":       s.metrics.noBackend.Load(),
			"batch_streams":    s.metrics.batchStreams.Load(),
			"batch_cells":      s.metrics.batchCells.Load(),
			"reassigned_cells": s.metrics.reassignedCells.Load(),
			"hedged_cells":     s.metrics.hedgedCells.Load(),
			"shed_cells":       s.metrics.shedCells.Load(),
			"corrupt_lines":    s.metrics.corruptLines.Load(),
			"dup_suppressed":   s.metrics.dupSuppressed.Load(),
			"transitions":      s.metrics.transitions.Load(),
			"backends_up":      uint64(len(s.UpBackends())),
		},
		Breakers: make(map[string]BreakerStatus, len(s.backends)),
		Backends: make(map[string]any, len(s.backends)),
	}
	for _, b := range s.backends {
		state, fails := b.brk.snapshot()
		resp.Breakers[b.url] = BreakerStatus{State: state, Fails: fails, Up: b.isUp()}
	}
	type scraped struct {
		url  string
		snap *server.MetricsSnapshot
		err  error
	}
	results := make([]scraped, len(s.backends))
	var wg sync.WaitGroup
	for i, b := range s.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.HealthTimeout)
			defer cancel()
			snap, err := b.client.Metrics(ctx)
			results[i] = scraped{url: b.url, snap: snap, err: err}
		}(i, b)
	}
	wg.Wait()
	agg := &resp.Aggregate
	for _, sc := range results {
		if sc.err != nil {
			resp.Backends[sc.url] = map[string]string{"error": sc.err.Error()}
			continue
		}
		resp.Backends[sc.url] = sc.snap
		mergeSnapshot(agg, sc.snap)
	}
	writeShardJSON(w, http.StatusOK, resp)
}

// mergeSnapshot sums one backend's counters into the aggregate.
func mergeSnapshot(agg *server.MetricsSnapshot, snap *server.MetricsSnapshot) {
	agg.InFlight += snap.InFlight
	agg.Requests = sumMap(agg.Requests, snap.Requests)
	agg.Admission = sumMap(agg.Admission, snap.Admission)
	agg.Cache = sumMap(agg.Cache, snap.Cache)
	agg.Memo = sumMap(agg.Memo, snap.Memo)
	agg.Batch = sumMap(agg.Batch, snap.Batch)
	agg.Traps = sumMap(agg.Traps, snap.Traps)
	agg.Latency = sumMap(agg.Latency, snap.Latency)
	agg.Pool = sumMap(agg.Pool, snap.Pool)
}

func sumMap(dst, src map[string]uint64) map[string]uint64 {
	if dst == nil {
		dst = make(map[string]uint64, len(src))
	}
	for k, v := range src {
		dst[k] += v
	}
	return dst
}

func writeShardJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
	w.Write([]byte("\n"))
}

func writeShardError(w http.ResponseWriter, status int, err error) {
	writeShardJSON(w, status, server.ErrorResponse{Error: err.Error()})
}
