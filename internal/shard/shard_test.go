package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"infat/internal/exp"
	"infat/internal/server"
	"infat/internal/workloads"
)

// TestRingStableOwnership pins the consistent-hashing contract: keys
// spread over every backend, ownership is deterministic, and removing
// one backend moves only that backend's keys.
func TestRingStableOwnership(t *testing.T) {
	r := newRing(3, DefaultReplicas, func(i int) string { return fmt.Sprintf("http://backend-%d", i) })
	allUp := func(int) bool { return true }
	counts := make([]int, 3)
	owners := make(map[string]int)
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key-%d", i)
		o := r.owner(k, allUp)
		if o < 0 || o > 2 {
			t.Fatalf("owner(%q) = %d", k, o)
		}
		if again := r.owner(k, allUp); again != o {
			t.Fatalf("owner(%q) unstable: %d then %d", k, o, again)
		}
		owners[k] = o
		counts[o]++
	}
	for b, n := range counts {
		if n < 300 {
			t.Errorf("backend %d owns %d of 3000 keys: ring is unbalanced", b, n)
		}
	}
	// Drop backend 1: its keys must move, everyone else's must not.
	without1 := func(b int) bool { return b != 1 }
	for k, o := range owners {
		no := r.owner(k, without1)
		if o != 1 && no != o {
			t.Fatalf("key %q moved %d->%d though its owner stayed up", k, o, no)
		}
		if o == 1 && no == 1 {
			t.Fatalf("key %q still routed to the removed backend", k)
		}
	}
	if r.owner("anything", func(int) bool { return false }) != -1 {
		t.Error("owner with no eligible backend != -1")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no backends succeeded")
	}
	if _, err := New(Config{Backends: []string{"http://a", "http://a"}}); err == nil {
		t.Error("New with duplicate backends succeeded")
	}
}

// testWorkloads is the small subset the equivalence tests run.
var testWorkloads = []string{"treeadd", "health"}

func workloadSet(t *testing.T) []workloads.Workload {
	t.Helper()
	var ws []workloads.Workload
	for _, name := range testWorkloads {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		ws = append(ws, w)
	}
	return ws
}

// newFleet boots n in-process backends plus the shard front tier and
// returns a client against the shard.
func newFleet(t *testing.T, n int) (*Shard, []*httptest.Server, *server.Client) {
	t.Helper()
	var urls []string
	var backs []*httptest.Server
	for i := 0; i < n; i++ {
		ts := httptest.NewServer(server.New(server.Config{}))
		t.Cleanup(ts.Close)
		backs = append(backs, ts)
		urls = append(urls, ts.URL)
	}
	sh, err := New(Config{
		Backends:       urls,
		HealthInterval: 50 * time.Millisecond,
		HealthTimeout:  time.Second,
		DownAfter:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sh.Close)
	front := httptest.NewServer(sh)
	t.Cleanup(front.Close)
	return sh, backs, server.NewClient(front.URL)
}

// serialGroundTruth computes the serial run the sharded campaigns must
// reproduce, once per test process (both equivalence tests share it).
var serialGroundTruth = struct {
	sync.Once
	results []exp.Result
	mem     []exp.MemResult
	err     error
}{}

func serialRun(t *testing.T) ([]exp.Result, []exp.MemResult) {
	t.Helper()
	g := &serialGroundTruth
	g.Do(func() {
		ws := workloadSet(t)
		workers := runtime.NumCPU()
		if g.results, g.err = exp.RunSet(ws, 1, workers); g.err != nil {
			return
		}
		g.mem, g.err = exp.RunMemSet(ws, exp.MemScale, workers)
	})
	if g.err != nil {
		t.Fatal(g.err)
	}
	return g.results, g.mem
}

// TestShardBatchReportEquivalence is the tentpole acceptance test: a
// batch campaign scattered over two backends reassembles to the exact
// bytes a serial run produces — full report and perf-only grid.
func TestShardBatchReportEquivalence(t *testing.T) {
	serial, serialMem := serialRun(t)

	_, _, c := newFleet(t, 2)
	ctx := context.Background()
	got, err := c.BatchReport(ctx, server.BatchRequest{Workloads: testWorkloads})
	if err != nil {
		t.Fatal(err)
	}
	if want := exp.Report(serial, serialMem); got != want {
		t.Fatalf("shard batch report differs from serial run:\n--- shard ---\n%s\n--- serial ---\n%s", got, want)
	}

	gotGrid, err := c.GridReport(ctx, server.BatchRequest{Workloads: testWorkloads})
	if err != nil {
		t.Fatal(err)
	}
	if want := exp.PerfReport(serial); gotGrid != want {
		t.Fatal("shard grid report differs from serial run")
	}
}

// TestShardFailover: with one backend killed, unary requests fail over
// and a batch campaign is reassigned to the survivor — same bytes.
func TestShardFailover(t *testing.T) {
	serial, serialMem := serialRun(t)

	sh, backs, c := newFleet(t, 2)
	ctx := context.Background()
	backs[0].Close()

	// Unary failover: whichever backend owned this key, the answer comes
	// from a live one.
	const src = "int main() { print(1); return 0; }"
	if _, _, err := c.Run(ctx, server.RunRequest{Source: src}); err != nil {
		t.Fatalf("run after backend loss: %v", err)
	}
	if _, cached, err := c.Run(ctx, server.RunRequest{Source: src}); err != nil || !cached {
		t.Fatalf("repeat run after backend loss: cached=%v err=%v", cached, err)
	}

	got, err := c.BatchReport(ctx, server.BatchRequest{Workloads: testWorkloads})
	if err != nil {
		t.Fatal(err)
	}
	if want := exp.Report(serial, serialMem); got != want {
		t.Fatal("post-failover shard batch report differs from serial run")
	}
	if sh.metrics.reassignedCells.Load() == 0 && sh.metrics.failovers.Load() == 0 {
		t.Error("failover left no trace in shard metrics")
	}

	// The health loop drains the dead backend from /healthz.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var h map[string]string
		resp, err := http.Get(c.BaseURL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if h[backs[0].URL] == "down" && h["status"] == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backend never drained: %v", h)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestShardSubsetAndValidation: explicit cell subsets stream exactly
// those cells; malformed requests fail with 400 before streaming.
func TestShardSubsetAndValidation(t *testing.T) {
	_, _, c := newFleet(t, 2)
	ctx := context.Background()

	var seqs []int
	trailer, err := c.GridStream(ctx, server.BatchRequest{Workloads: testWorkloads, Cells: []int{0, 7, 3}},
		func(cell server.BatchCell) error {
			seqs = append(seqs, cell.Seq)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if trailer.Cells != 3 || trailer.Completed != 3 || trailer.Failed != 0 {
		t.Fatalf("trailer = %+v", trailer)
	}
	want := map[int]bool{0: true, 7: true, 3: true}
	if len(seqs) != 3 {
		t.Fatalf("received %d cells: %v", len(seqs), seqs)
	}
	for _, seq := range seqs {
		if !want[seq] {
			t.Errorf("unexpected cell seq %d", seq)
		}
	}

	for name, body := range map[string]string{
		"unknown workload": `{"workloads":["nope"]}`,
		"bad subset":       `{"cells":[99999]}`,
		"unknown field":    `{"bogus":1}`,
	} {
		resp, err := http.Post(c.BaseURL+server.GridPath, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestBreakerStateMachine drives the full circuit:
// closed → open at the failure threshold → half-open after the cooldown
// (exactly one probe slot) → closed on probe success, reopened on probe
// failure. The clock is injected so every transition is deterministic.
func TestBreakerStateMachine(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := newBreaker(2, time.Minute)
	b.now = func() time.Time { return clock }

	if !b.allow() {
		t.Fatal("closed breaker refused traffic")
	}
	b.onFailure()
	if st, fails := b.snapshot(); st != BreakerClosed || fails != 1 {
		t.Fatalf("after 1 failure: state=%s fails=%d", st, fails)
	}
	b.onFailure() // hits threshold
	if st, _ := b.snapshot(); st != BreakerOpen {
		t.Fatalf("after threshold failures: state=%s, want open", st)
	}
	if b.allow() {
		t.Fatal("open breaker admitted traffic inside the cooldown")
	}

	clock = clock.Add(time.Minute)
	if !b.allow() {
		t.Fatal("cooldown elapsed but no half-open probe admitted")
	}
	if st, _ := b.snapshot(); st != BreakerHalfOpen {
		t.Fatalf("post-cooldown state=%s, want half-open", st)
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.onFailure() // probe failed: straight back to open
	if st, _ := b.snapshot(); st != BreakerOpen {
		t.Fatalf("failed probe left state=%s, want open", st)
	}
	if b.allow() {
		t.Fatal("reopened breaker admitted traffic inside the new cooldown")
	}

	clock = clock.Add(time.Minute)
	if !b.allow() {
		t.Fatal("second cooldown elapsed but no probe admitted")
	}
	b.onSuccess()
	if st, fails := b.snapshot(); st != BreakerClosed || fails != 0 {
		t.Fatalf("successful probe: state=%s fails=%d, want closed/0", st, fails)
	}
	if !b.allow() {
		t.Fatal("reclosed breaker refused traffic")
	}
}

// TestProbeDelayBackoffAndJitter pins the probe pacing contract: the
// delay doubles per consecutive failure up to 8x the base, carries at
// most a quarter-interval of jitter, is deterministic under a seed, and
// differs across seeds (no fleet-wide lockstep).
func TestProbeDelayBackoffAndJitter(t *testing.T) {
	const base = 100 * time.Millisecond
	rng := newPrng(42)
	for fails := 0; fails <= 6; fails++ {
		want := base << uint(fails)
		if want > 8*base {
			want = 8 * base
		}
		d := probeDelay(base, fails, rng)
		if d < want || d >= want+base/4 {
			t.Errorf("probeDelay(fails=%d) = %v, want [%v, %v)", fails, d, want, want+base/4)
		}
	}
	// Same seed, same schedule — the reproducibility the netchaos
	// campaign gates on.
	r1, r2 := newPrng(7), newPrng(7)
	for i := 0; i < 16; i++ {
		if d1, d2 := probeDelay(base, i%4, r1), probeDelay(base, i%4, r2); d1 != d2 {
			t.Fatalf("seeded probe schedule not reproducible: %v vs %v at step %d", d1, d2, i)
		}
	}
	// Different seeds must desynchronize somewhere.
	ra, rb := newPrng(1), newPrng(2)
	same := true
	for i := 0; i < 16; i++ {
		if probeDelay(base, 0, ra) != probeDelay(base, 0, rb) {
			same = false
		}
	}
	if same {
		t.Error("probe jitter identical across seeds: loops would tick in lockstep")
	}
}

// throttledHandler slows every response-body write of POSTed streams so
// a backend demonstrably still has undelivered cells when the test
// kills it mid-stream.
type throttledHandler struct {
	h     http.Handler
	delay time.Duration
}

func (th throttledHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		w = &slowWriter{ResponseWriter: w, delay: th.delay}
	}
	th.h.ServeHTTP(w, r)
}

type slowWriter struct {
	http.ResponseWriter
	delay time.Duration
}

func (s *slowWriter) Write(p []byte) (int, error) {
	time.Sleep(s.delay)
	return s.ResponseWriter.Write(p)
}

func (s *slowWriter) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *slowWriter) Unwrap() http.ResponseWriter { return s.ResponseWriter }

// TestShardChaosMidStreamBackendKill kills a backend in the middle of a
// /v1/chaos campaign — connections dropped while its part is streaming
// — and requires the campaign to finish anyway with the exact serial
// bytes, the backend's undelivered cells reassigned to the survivor and
// accounted in the reassigned_cells metric.
func TestShardChaosMidStreamBackendKill(t *testing.T) {
	// Backend 0 streams slowly (5ms per write), so when the first cell
	// arrives at the client, backend 0 provably still holds undelivered
	// cells; backend 1 is a normal survivor.
	slow := httptest.NewServer(throttledHandler{h: server.New(server.Config{}), delay: 5 * time.Millisecond})
	t.Cleanup(slow.Close)
	fast := httptest.NewServer(server.New(server.Config{}))
	t.Cleanup(fast.Close)

	sh, err := New(Config{
		Backends:       []string{slow.URL, fast.URL},
		HealthInterval: 50 * time.Millisecond,
		HealthTimeout:  time.Second,
		DownAfter:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sh.Close)
	front := httptest.NewServer(sh)
	t.Cleanup(front.Close)
	c := server.NewClient(front.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	req := server.ChaosRequest{Scale: 1}
	plan := req.Plan()
	a := plan.NewAssembly()
	// The killer keeps cutting backend 0's connections for a window, not
	// just once: the relay client retries a stream that died before its
	// first line, so a single cut could be quietly absorbed by a clean
	// reconnect instead of forcing a reassignment.
	killDone := make(chan struct{})
	var kill sync.Once
	startKiller := func() {
		go func() {
			defer close(killDone)
			for i := 0; i < 40; i++ {
				slow.CloseClientConnections()
				time.Sleep(25 * time.Millisecond)
			}
		}()
	}
	if _, err := c.ChaosStream(ctx, req, func(cell server.BatchCell) error {
		kill.Do(startKiller)
		if cell.Error != "" || cell.Chaos == nil {
			return fmt.Errorf("cell %d: error=%q chaos=%v", cell.Seq, cell.Error, cell.Chaos)
		}
		return a.AddChecked(cell.Meta(), *cell.Chaos)
	}); err != nil {
		t.Fatalf("chaos campaign with mid-stream kill: %v", err)
	}
	<-killDone
	got, internal, err := a.Report()
	if err != nil {
		t.Fatal(err)
	}
	want, wantInternal := exp.ChaosReport(1, runtime.NumCPU())
	if got != want || internal != wantInternal {
		t.Fatal("post-kill chaos report differs from serial campaign")
	}
	if n := sh.metrics.reassignedCells.Load(); n == 0 {
		t.Error("mid-stream kill reassigned no cells")
	}
	// The metric is also visible on the wire.
	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Shard["reassigned_cells"] == 0 {
		t.Error("reassigned_cells missing from /metrics")
	}
}

// TestShardRejectsAlienCells fronts the shard over one hostile backend
// that answers health probes but streams cells from outside its
// assigned part (alien sequence numbers). The shard must reject every
// such line at the trust boundary — corrupt_lines, never a wrong report
// — fail that backend's stream, and complete the campaign on the honest
// survivor with byte-identical output.
func TestShardRejectsAlienCells(t *testing.T) {
	serial, _ := serialRun(t)

	hostile := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			fmt.Fprintln(w, `{"status":"ok"}`)
			return
		}
		// Valid-shaped perf cells with sequence numbers no part could
		// contain, then a clean trailer claiming success.
		w.Header().Set("Content-Type", "application/x-ndjson")
		for i := 0; i < 3; i++ {
			fmt.Fprintf(w, `{"seq":%d,"kind":"perf","workload":"treeadd","config":"baseline","result":{"perf":{}}}`+"\n", 100000+i)
		}
		fmt.Fprintln(w, `{"done":true,"cells":3,"completed":3}`)
	}))
	t.Cleanup(hostile.Close)
	honest := httptest.NewServer(server.New(server.Config{}))
	t.Cleanup(honest.Close)

	sh, err := New(Config{
		Backends:       []string{hostile.URL, honest.URL},
		HealthInterval: 50 * time.Millisecond,
		HealthTimeout:  time.Second,
		DownAfter:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sh.Close)
	front := httptest.NewServer(sh)
	t.Cleanup(front.Close)
	c := server.NewClient(front.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	got, err := c.GridReport(ctx, server.BatchRequest{Workloads: testWorkloads})
	if err != nil {
		t.Fatalf("grid campaign over hostile backend: %v", err)
	}
	if want := exp.PerfReport(serial); got != want {
		t.Fatal("hostile backend corrupted the assembled report")
	}
	if n := sh.metrics.corruptLines.Load(); n == 0 {
		t.Error("alien cells drew no corrupt_lines")
	}
	if n := sh.metrics.reassignedCells.Load(); n == 0 {
		t.Error("hostile backend's part was not reassigned")
	}
}

// TestShardMetricsAggregation: /metrics sums the fleet and reports the
// front tier's own counters.
func TestShardMetricsAggregation(t *testing.T) {
	_, _, c := newFleet(t, 2)
	ctx := context.Background()
	if _, _, err := c.Run(ctx, server.RunRequest{Source: "int main() { return 0; }"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if len(m.Backends) != 2 {
		t.Fatalf("%d backends in metrics, want 2", len(m.Backends))
	}
	if m.Aggregate.Requests["run"] == 0 || m.Aggregate.Requests["total"] == 0 {
		t.Errorf("aggregate requests %v", m.Aggregate.Requests)
	}
	if m.Shard["proxied"] == 0 || m.Shard["backends_up"] != 2 {
		t.Errorf("shard counters %v", m.Shard)
	}
	// The memo store is fleet-aggregated like every other counter map:
	// the run above must appear as a miss (and an entry) somewhere in the
	// fleet's unified stores.
	if m.Aggregate.Memo == nil {
		t.Fatal("aggregate missing memo section")
	}
	if m.Aggregate.Memo["misses"] == 0 || m.Aggregate.Memo["entries"] == 0 {
		t.Errorf("aggregate memo %v, want misses and entries after a run", m.Aggregate.Memo)
	}
}
