// Package stats provides the small numeric and formatting helpers the
// evaluation harness uses: geometric means of overhead ratios (the paper
// reports geo-mean overheads), percentage formatting, and aligned text
// tables for terminal output.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Geomean returns the geometric mean of the values; it returns 0 for an
// empty slice and panics on non-positive values (ratios must be > 0).
func Geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var logSum float64
	for _, v := range vals {
		if v <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %g", v))
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vals)))
}

// Overhead converts a ratio to a percentage overhead: 1.12 -> +12.0%.
func Overhead(ratio float64) float64 { return (ratio - 1) * 100 }

// GeomeanRatio formats the geometric mean of a ratio series as "1.23x",
// or "n/a" for an empty series — Geomean's zero return would otherwise
// render as a bogus "0.00x".
func GeomeanRatio(vals []float64) string {
	if len(vals) == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", Geomean(vals))
}

// GeomeanOverhead formats the geometric mean of a ratio series as a
// signed percentage overhead, or "n/a" for an empty series — feeding
// Geomean's zero return through Overhead would otherwise print -100.0%
// (e.g. Figure 12 restricted to an excluded workload).
func GeomeanOverhead(vals []float64) string {
	if len(vals) == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", Overhead(Geomean(vals)))
}

// Ratio divides with a zero-denominator guard.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Pct formats a fraction as a percentage string.
func Pct(num, den uint64) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(num)/float64(den))
}

// SI formats a count with an SI-style suffix the way Table 4 prints
// scientific counts.
func SI(n uint64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.2fe9", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fe6", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.2fe3", float64(n)/1e3)
	}
	return fmt.Sprintf("%d", n)
}

// Table renders rows as an aligned text table; the first row is the
// header, separated by a rule.
type Table struct {
	rows [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.rows = append(t.rows, cells) }

// AddF appends a row of formatted cells.
func (t *Table) AddF(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	if len(t.rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, row := range t.rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, row := range t.rows {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			b.WriteString(strings.Repeat("-", total-2))
			b.WriteString("\n")
		}
	}
	return b.String()
}
