package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %g", g)
	}
	if g := Geomean([]float64{1, 1, 1}); math.Abs(g-1) > 1e-12 {
		t.Errorf("geomean(1,1,1) = %g", g)
	}
	if Geomean(nil) != 0 {
		t.Error("geomean(nil) != 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive value did not panic")
		}
	}()
	Geomean([]float64{1, 0})
}

// Property: geomean lies between min and max.
func TestQuickGeomeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			vals[i] = float64(r%1000)/100 + 0.01
			lo = math.Min(lo, vals[i])
			hi = math.Max(hi, vals[i])
		}
		g := Geomean(vals)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeomeanFormattersGuardEmptySeries(t *testing.T) {
	if got := GeomeanRatio(nil); got != "n/a" {
		t.Errorf("GeomeanRatio(nil) = %q", got)
	}
	if got := GeomeanOverhead(nil); got != "n/a" {
		t.Errorf("GeomeanOverhead(nil) = %q", got)
	}
	if got := GeomeanRatio([]float64{2, 8}); got != "4.00x" {
		t.Errorf("GeomeanRatio(2,8) = %q", got)
	}
	if got := GeomeanOverhead([]float64{1.12}); got != "+12.0%" {
		t.Errorf("GeomeanOverhead(1.12) = %q", got)
	}
}

func TestOverheadAndRatio(t *testing.T) {
	if Overhead(1.12) < 11.99 || Overhead(1.12) > 12.01 {
		t.Errorf("overhead(1.12) = %g", Overhead(1.12))
	}
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Error("ratio")
	}
}

func TestPctAndSI(t *testing.T) {
	if Pct(1, 4) != "25%" || Pct(1, 0) != "-" {
		t.Errorf("pct = %s / %s", Pct(1, 4), Pct(1, 0))
	}
	cases := map[uint64]string{
		42:            "42",
		9_999:         "9999",
		12_500:        "12.50e3",
		3_400_000:     "3.40e6",
		2_100_000_000: "2.10e9",
	}
	for n, want := range cases {
		if got := SI(n); got != want {
			t.Errorf("SI(%d) = %s, want %s", n, got, want)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	var tb Table
	tb.Add("Name", "Value")
	tb.Add("x", "1")
	tb.AddF("yyyy", 1234)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Error("missing header rule")
	}
	// Columns align: the second column starts at the same offset.
	if strings.Index(lines[0], "Value") != strings.Index(lines[2], "1") {
		t.Error("columns misaligned")
	}
	var empty Table
	if empty.String() != "" {
		t.Error("empty table rendered content")
	}
}
