package tag

import (
	"testing"
)

// FuzzTagRoundTrip hammers the tag-word helpers with arbitrary 64-bit
// patterns: whatever bits a corrupted pointer carries, the accessors
// must stay panic-free and the with/of pairs must round-trip. This is
// the bit-level contract the chaos campaign's pointer-flip faults lean
// on.
func FuzzTagRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint16(0))
	f.Add(^uint64(0), uint64(1)<<62, uint16(63))
	f.Add(MakeLocal(0x1000, 3, 5), uint64(1)<<60, uint16(7))
	f.Add(MakeSubheap(0x40000000, 2, 9), uint64(1)<<48, uint16(200))
	f.Add(MakeGlobal(0x2000, 77), uint64(0xF)<<60, uint16(4095))
	f.Fuzz(func(t *testing.T, p, flip uint64, idx uint16) {
		q := p ^ flip

		// No accessor may panic on arbitrary bits, and Format must always
		// render something.
		if Format(q) == "" {
			t.Fatal("empty Format")
		}
		if Addr(q) != q&AddrMask {
			t.Fatalf("Addr(%#x) = %#x", q, Addr(q))
		}

		// Re-applying a field's own value is the identity.
		if got := WithPoison(q, PoisonOf(q)); got != q {
			t.Fatalf("poison round-trip: %#x -> %#x", q, got)
		}
		if got := WithScheme(q, SchemeOf(q)); got != q {
			t.Fatalf("scheme round-trip: %#x -> %#x", q, got)
		}
		if got := WithMeta(q, Meta(q)); got != q {
			t.Fatalf("meta round-trip: %#x -> %#x", q, got)
		}

		// Decoding a scheme's fields and re-encoding them reconstructs the
		// pointer modulo poison (Make* emits Valid).
		switch SchemeOf(q) {
		case SchemeLocalOffset:
			off, sub := LocalFields(q)
			if got := MakeLocal(Addr(q), off, sub); got != WithPoison(q, Valid) {
				t.Fatalf("local round-trip: %#x -> %#x", q, got)
			}
		case SchemeSubheap:
			cr, sub := SubheapFields(q)
			if got := MakeSubheap(Addr(q), cr, sub); got != WithPoison(q, Valid) {
				t.Fatalf("subheap round-trip: %#x -> %#x", q, got)
			}
		case SchemeGlobalTable:
			if got := MakeGlobal(Addr(q), GlobalIndex(q)); got != WithPoison(q, Valid) {
				t.Fatalf("global round-trip: %#x -> %#x", q, got)
			}
		}

		// SubobjIndex/WithSubobjIndex: an address-preserving pair whose only
		// side channel is poisoning on an unencodable index.
		r := WithSubobjIndex(q, idx)
		if Addr(r) != Addr(q) {
			t.Fatalf("WithSubobjIndex moved the address: %#x -> %#x", q, r)
		}
		if ps := PoisonOf(r); ps != PoisonOf(q) && ps != Invalid {
			t.Fatalf("WithSubobjIndex(%#x, %d) set poison %d", q, idx, ps)
		}
		if got, ok := SubobjIndex(r); ok && PoisonOf(r) != Invalid && got != idx {
			t.Fatalf("subobj round-trip: wrote %d, read %d from %#x", idx, got, r)
		}
	})
}
