// Package tag implements the In-Fat Pointer tag encoding from Figure 4 of
// the paper: the top 16 bits of a 64-bit pointer hold 2 poison bits, a
// 2-bit scheme selector, and 12 bits shared between scheme metadata and a
// subobject index. The split of those 12 bits depends on the scheme:
//
//	local-offset: 6-bit granule offset | 6-bit subobject index
//	subheap:      4-bit control-register index | 8-bit subobject index
//	global-table: 12-bit table index (no subobject index)
//
// A pointer whose selector is SchemeLegacy (the canonical-address pattern,
// all zero) carries no metadata and is exempt from bounds checking.
package tag

import "fmt"

// Width constants of the tag fields (Figure 4).
const (
	// TagBits is the total tag width at the top of each pointer.
	TagBits = 16
	// AddrBits is the number of significant address bits below the tag.
	AddrBits = 64 - TagBits

	poisonShift   = 62
	selectorShift = 60
	metaShift     = AddrBits // scheme metadata + subobject index live at bits 48..59

	poisonMask   = uint64(0b11) << poisonShift
	selectorMask = uint64(0b11) << selectorShift
	metaMask     = uint64(0xFFF) << metaShift

	// AddrMask selects the 48-bit address portion of a pointer.
	AddrMask = uint64(1)<<AddrBits - 1
)

// Poison is the 2-bit pointer validity state (§3.2). Standard loads and
// stores trap unless the state is Valid; promote refuses to retrieve
// metadata for Invalid pointers; OOB is recoverable (e.g. off-by-one
// one-past-the-end pointers that are never dereferenced).
type Poison uint8

const (
	// Valid means the pointer points within its bounds.
	Valid Poison = 0b00
	// OOB means out-of-bounds but recoverable (notably one-past-the-end).
	OOB Poison = 0b01
	// Stale marks a pointer whose allocation generation no longer matches
	// the generation store: the chunk it points into was freed after the
	// pointer was derived. Only the temporal mode (ModeIFPTemporal)
	// produces this encoding; the spatial modes leave 0b10 unused.
	Stale Poison = 0b10
	// Invalid means the pointer hit an irrecoverable error (bad metadata,
	// indexing after a failed check) and must never be dereferenced.
	Invalid Poison = 0b11
)

func (p Poison) String() string {
	switch p {
	case Valid:
		return "valid"
	case OOB:
		return "oob"
	case Stale:
		return "stale"
	case Invalid:
		return "invalid"
	}
	return fmt.Sprintf("poison(%#b)", uint8(p))
}

// Scheme is the 2-bit object-metadata scheme selector (§3.2, §3.3). The
// all-zero pattern is reserved for legacy pointers so that canonical
// addresses from uninstrumented code decode as carrying no metadata.
type Scheme uint8

const (
	// SchemeLegacy marks a pointer with no metadata (canonical address).
	SchemeLegacy Scheme = 0b00
	// SchemeLocalOffset locates metadata appended to the object (§3.3.1).
	SchemeLocalOffset Scheme = 0b01
	// SchemeSubheap locates shared metadata inside a power-of-2 block
	// described by a control register (§3.3.2).
	SchemeSubheap Scheme = 0b10
	// SchemeGlobalTable indexes a row of the global metadata table (§3.3.3).
	SchemeGlobalTable Scheme = 0b11
)

func (s Scheme) String() string {
	switch s {
	case SchemeLegacy:
		return "legacy"
	case SchemeLocalOffset:
		return "local-offset"
	case SchemeSubheap:
		return "subheap"
	case SchemeGlobalTable:
		return "global-table"
	}
	return fmt.Sprintf("scheme(%#b)", uint8(s))
}

// Per-scheme field widths within the 12 scheme-metadata + subobject bits.
const (
	// LocalOffsetBits is the width of the granule-offset field.
	LocalOffsetBits = 6
	// LocalSubobjBits is the width of the local-offset subobject index.
	LocalSubobjBits = 6
	// SubheapCRBits is the width of the subheap control-register index.
	SubheapCRBits = 4
	// SubheapSubobjBits is the width of the subheap subobject index.
	SubheapSubobjBits = 8
	// GlobalIndexBits is the width of the global-table row index.
	GlobalIndexBits = 12

	// MaxLocalOffset is the largest encodable granule offset.
	MaxLocalOffset = 1<<LocalOffsetBits - 1
	// MaxLocalSubobj is the largest local-offset subobject index.
	MaxLocalSubobj = 1<<LocalSubobjBits - 1
	// MaxSubheapCR is the largest subheap control-register index.
	MaxSubheapCR = 1<<SubheapCRBits - 1
	// MaxSubheapSubobj is the largest subheap subobject index.
	MaxSubheapSubobj = 1<<SubheapSubobjBits - 1
	// MaxGlobalIndex is the largest global-table row index.
	MaxGlobalIndex = 1<<GlobalIndexBits - 1

	// NumSubheapCRs is the number of subheap control registers (§3.3.2).
	NumSubheapCRs = MaxSubheapCR + 1
)

// Granule is the local-offset scheme's alignment granule in bytes
// (§3.3.1: 16 bytes in the prototype). The scheme can describe objects up
// to (2^6-1)*16 = 1008 bytes.
const Granule = 16

// MaxLocalObjectSize is the local-offset scheme's object size cap: the
// metadata must be reachable within MaxLocalOffset granules of any granule-
// aligned address inside the object.
const MaxLocalObjectSize = MaxLocalOffset * Granule

// Addr extracts the 48-bit address portion of a tagged pointer.
func Addr(p uint64) uint64 { return p & AddrMask }

// PoisonOf extracts the poison bits of a pointer.
func PoisonOf(p uint64) Poison { return Poison(p >> poisonShift) }

// WithPoison returns p with its poison bits replaced.
func WithPoison(p uint64, ps Poison) uint64 {
	return p&^poisonMask | uint64(ps)<<poisonShift
}

// SchemeOf extracts the scheme-selector bits of a pointer.
func SchemeOf(p uint64) Scheme { return Scheme(p >> selectorShift & 0b11) }

// WithScheme returns p with its scheme selector replaced.
func WithScheme(p uint64, s Scheme) uint64 {
	return p&^selectorMask | uint64(s)<<selectorShift
}

// Meta extracts the raw 12-bit scheme-metadata + subobject-index field.
func Meta(p uint64) uint16 { return uint16(p >> metaShift & 0xFFF) }

// WithMeta returns p with the raw 12-bit field replaced.
func WithMeta(p uint64, m uint16) uint64 {
	return p&^metaMask | uint64(m&0xFFF)<<metaShift
}

// IsLegacy reports whether p carries no metadata: the selector is the
// canonical (legacy) pattern. NULL pointers are legacy pointers.
func IsLegacy(p uint64) bool { return SchemeOf(p) == SchemeLegacy }

// Strip returns the canonical (tag-free) form of p, preserving nothing but
// the address. It models ifpextract's truncation (§4.1) without the poison
// bookkeeping.
func Strip(p uint64) uint64 { return Addr(p) }

// --- Local-offset scheme fields (Figure 6) ---

// LocalFields unpacks the local-offset tag: the granule offset from the
// (granule-truncated) current address to the metadata, and the subobject
// index.
func LocalFields(p uint64) (offset, subobj uint16) {
	m := Meta(p)
	return m >> LocalSubobjBits, m & MaxLocalSubobj
}

// MakeLocal builds a valid local-offset pointer from an address, granule
// offset to metadata, and subobject index. It panics if a field is out of
// range — callers (the runtime and compiler instrumentation) must size-check
// first; the hardware never constructs out-of-range fields.
func MakeLocal(addr uint64, offset, subobj uint16) uint64 {
	if offset > MaxLocalOffset {
		panic(fmt.Sprintf("tag: local-offset granule offset %d > %d", offset, MaxLocalOffset))
	}
	if subobj > MaxLocalSubobj {
		panic(fmt.Sprintf("tag: local-offset subobject index %d > %d", subobj, MaxLocalSubobj))
	}
	p := addr & AddrMask
	p = WithScheme(p, SchemeLocalOffset)
	return WithMeta(p, offset<<LocalSubobjBits|subobj)
}

// --- Subheap scheme fields (Figure 7) ---

// SubheapFields unpacks the subheap tag: the control-register index and the
// subobject index.
func SubheapFields(p uint64) (cr, subobj uint16) {
	m := Meta(p)
	return m >> SubheapSubobjBits, m & MaxSubheapSubobj
}

// MakeSubheap builds a valid subheap pointer from an address, control
// register index and subobject index.
func MakeSubheap(addr uint64, cr, subobj uint16) uint64 {
	if cr > MaxSubheapCR {
		panic(fmt.Sprintf("tag: subheap CR index %d > %d", cr, MaxSubheapCR))
	}
	if subobj > MaxSubheapSubobj {
		panic(fmt.Sprintf("tag: subheap subobject index %d > %d", subobj, MaxSubheapSubobj))
	}
	p := addr & AddrMask
	p = WithScheme(p, SchemeSubheap)
	return WithMeta(p, cr<<SubheapSubobjBits|subobj)
}

// --- Global-table scheme fields (Figure 8) ---

// GlobalIndex unpacks the 12-bit global-table row index. The global-table
// scheme has no subobject index (§3.3.3): all 12 bits are consumed by the
// lookup, so global-table pointers cannot narrow bounds during promote.
func GlobalIndex(p uint64) uint16 { return Meta(p) }

// MakeGlobal builds a valid global-table pointer from an address and row
// index.
func MakeGlobal(addr uint64, index uint16) uint64 {
	if index > MaxGlobalIndex {
		panic(fmt.Sprintf("tag: global-table index %d > %d", index, MaxGlobalIndex))
	}
	p := addr & AddrMask
	p = WithScheme(p, SchemeGlobalTable)
	return WithMeta(p, index)
}

// SubobjIndex returns the subobject-index field of p under its own scheme,
// or 0 (and false) if the scheme has no subobject index (legacy and
// global-table pointers).
func SubobjIndex(p uint64) (uint16, bool) {
	switch SchemeOf(p) {
	case SchemeLocalOffset:
		_, s := LocalFields(p)
		return s, true
	case SchemeSubheap:
		_, s := SubheapFields(p)
		return s, true
	}
	return 0, false
}

// WithSubobjIndex returns p with its subobject-index field replaced; it is
// the data path of the ifpidx instruction. Setting an index on a scheme
// without one (or an out-of-range index) poisons the pointer Invalid, since
// the instrumented program asked for narrowing the hardware cannot express.
func WithSubobjIndex(p uint64, idx uint16) uint64 {
	switch SchemeOf(p) {
	case SchemeLocalOffset:
		if idx > MaxLocalSubobj {
			return WithPoison(p, Invalid)
		}
		off, _ := LocalFields(p)
		return WithMeta(p, off<<LocalSubobjBits|idx)
	case SchemeSubheap:
		if idx > MaxSubheapSubobj {
			return WithPoison(p, Invalid)
		}
		cr, _ := SubheapFields(p)
		return WithMeta(p, cr<<SubheapSubobjBits|idx)
	case SchemeGlobalTable:
		// The global-table scheme has no subobject-index bits (§3.3.3:
		// "objects using the global table scheme cannot narrow pointer
		// bounds in promote"); the update is dropped and protection
		// stays at object granularity.
		return p
	}
	// Legacy pointers carry no metadata; narrowing requests are ignored
	// (the pointer remains unchecked, matching the paper's partial
	// protection for legacy code).
	return p
}

// --- Generation fields (temporal mode) ---
//
// ModeIFPTemporal repurposes the subobject-index bits as an allocation
// generation: 6 bits under the local-offset scheme, 8 under subheap. The
// global-table scheme spends all 12 bits on the row index and therefore
// carries no generation (its pointers are temporally unchecked — the
// same trade-off that denies it subobject narrowing). Legacy pointers
// carry no tag at all.

// GenBits returns the width of the generation field available under
// scheme s (0 if the scheme cannot carry one).
func GenBits(s Scheme) int {
	switch s {
	case SchemeLocalOffset:
		return LocalSubobjBits
	case SchemeSubheap:
		return SubheapSubobjBits
	}
	return 0
}

// Gen returns the allocation generation stamped in p's tag, and whether
// p's scheme carries one. It is the temporal-mode reading of the same
// bits SubobjIndex decodes spatially.
func Gen(p uint64) (uint16, bool) { return SubobjIndex(p) }

// WithGen returns p with its generation field replaced by g truncated to
// the scheme's field width. Schemes without a generation field (legacy,
// global-table) return p unchanged: such pointers cannot be temporally
// checked and must not be poisoned for it.
func WithGen(p uint64, g uint32) uint64 {
	switch SchemeOf(p) {
	case SchemeLocalOffset:
		off, _ := LocalFields(p)
		return WithMeta(p, off<<LocalSubobjBits|uint16(g)&MaxLocalSubobj)
	case SchemeSubheap:
		cr, _ := SubheapFields(p)
		return WithMeta(p, cr<<SubheapSubobjBits|uint16(g)&MaxSubheapSubobj)
	}
	return p
}

// GenMatches reports whether pointer generation pg (already truncated to
// the scheme's field width) matches store generation sg under a field of
// the given width.
func GenMatches(pg uint16, sg uint32, bits int) bool {
	if bits <= 0 {
		return true
	}
	return pg == uint16(sg)&(1<<bits-1)
}

// Format renders a tagged pointer for diagnostics.
func Format(p uint64) string {
	s := SchemeOf(p)
	switch s {
	case SchemeLocalOffset:
		off, sub := LocalFields(p)
		return fmt.Sprintf("%s[%s off=%d sub=%d]@%#x", PoisonOf(p), s, off, sub, Addr(p))
	case SchemeSubheap:
		cr, sub := SubheapFields(p)
		return fmt.Sprintf("%s[%s cr=%d sub=%d]@%#x", PoisonOf(p), s, cr, sub, Addr(p))
	case SchemeGlobalTable:
		return fmt.Sprintf("%s[%s idx=%d]@%#x", PoisonOf(p), s, GlobalIndex(p), Addr(p))
	}
	return fmt.Sprintf("%s[legacy]@%#x", PoisonOf(p), Addr(p))
}
