package tag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFieldWidthsSumToTag(t *testing.T) {
	// Figure 4: 2 poison + 2 selector + 12 scheme-metadata/subobject = 16.
	if got := 2 + 2 + 12; got != TagBits {
		t.Fatalf("tag fields sum to %d, want %d", got, TagBits)
	}
	if LocalOffsetBits+LocalSubobjBits != 12 {
		t.Errorf("local-offset split %d+%d != 12", LocalOffsetBits, LocalSubobjBits)
	}
	if SubheapCRBits+SubheapSubobjBits != 12 {
		t.Errorf("subheap split %d+%d != 12", SubheapCRBits, SubheapSubobjBits)
	}
	if GlobalIndexBits != 12 {
		t.Errorf("global index width %d != 12", GlobalIndexBits)
	}
}

func TestPaperCapacities(t *testing.T) {
	// §3.3.1: objects up to (2^6-1)*16 = 1008 bytes, 64 layout elements.
	if MaxLocalObjectSize != 1008 {
		t.Errorf("local-offset max object size = %d, want 1008", MaxLocalObjectSize)
	}
	if MaxLocalSubobj+1 != 64 {
		t.Errorf("local-offset subobject capacity = %d, want 64", MaxLocalSubobj+1)
	}
	// §3.3.2: 16 control registers, 4 bits to select, 8-bit subobject index.
	if NumSubheapCRs != 16 {
		t.Errorf("subheap CRs = %d, want 16", NumSubheapCRs)
	}
	if MaxSubheapSubobj+1 != 256 {
		t.Errorf("subheap subobject capacity = %d, want 256", MaxSubheapSubobj+1)
	}
	// §3.3.3: 12 bits of index.
	if MaxGlobalIndex+1 != 4096 {
		t.Errorf("global table capacity = %d, want 4096", MaxGlobalIndex+1)
	}
	if Granule != 16 {
		t.Errorf("granule = %d, want 16", Granule)
	}
}

func TestLegacyIsCanonical(t *testing.T) {
	// A canonical user-space pointer (top bits zero) must decode as a
	// legacy pointer in the Valid state, so uninstrumented code works.
	p := uint64(0x7fff_1234_5678)
	if !IsLegacy(p) {
		t.Errorf("canonical pointer %#x not legacy", p)
	}
	if PoisonOf(p) != Valid {
		t.Errorf("canonical pointer poison = %v, want valid", PoisonOf(p))
	}
	if Addr(p) != p {
		t.Errorf("Addr(%#x) = %#x", p, Addr(p))
	}
	if !IsLegacy(0) {
		t.Error("NULL is not legacy")
	}
}

func TestLocalRoundTrip(t *testing.T) {
	p := MakeLocal(0x1000, 13, 7)
	if SchemeOf(p) != SchemeLocalOffset {
		t.Fatalf("scheme = %v", SchemeOf(p))
	}
	off, sub := LocalFields(p)
	if off != 13 || sub != 7 {
		t.Errorf("fields = (%d,%d), want (13,7)", off, sub)
	}
	if Addr(p) != 0x1000 {
		t.Errorf("addr = %#x", Addr(p))
	}
	if PoisonOf(p) != Valid {
		t.Errorf("poison = %v", PoisonOf(p))
	}
}

func TestSubheapRoundTrip(t *testing.T) {
	p := MakeSubheap(0xdeadbeef, 15, 255)
	cr, sub := SubheapFields(p)
	if cr != 15 || sub != 255 {
		t.Errorf("fields = (%d,%d), want (15,255)", cr, sub)
	}
	if SchemeOf(p) != SchemeSubheap {
		t.Errorf("scheme = %v", SchemeOf(p))
	}
}

func TestGlobalRoundTrip(t *testing.T) {
	p := MakeGlobal(0x4000_0000, 4095)
	if GlobalIndex(p) != 4095 {
		t.Errorf("index = %d", GlobalIndex(p))
	}
	if SchemeOf(p) != SchemeGlobalTable {
		t.Errorf("scheme = %v", SchemeOf(p))
	}
}

func TestMakeOutOfRangePanics(t *testing.T) {
	cases := []func(){
		func() { MakeLocal(0, MaxLocalOffset+1, 0) },
		func() { MakeLocal(0, 0, MaxLocalSubobj+1) },
		func() { MakeSubheap(0, MaxSubheapCR+1, 0) },
		func() { MakeSubheap(0, 0, MaxSubheapSubobj+1) },
		func() { MakeGlobal(0, MaxGlobalIndex+1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestPoisonTransitions(t *testing.T) {
	p := MakeLocal(0x2000, 1, 0)
	p = WithPoison(p, OOB)
	if PoisonOf(p) != OOB {
		t.Fatalf("poison = %v, want oob", PoisonOf(p))
	}
	// Poisoning must not disturb other fields.
	off, sub := LocalFields(p)
	if off != 1 || sub != 0 || Addr(p) != 0x2000 || SchemeOf(p) != SchemeLocalOffset {
		t.Error("poison bits leaked into other fields")
	}
	p = WithPoison(p, Invalid)
	if PoisonOf(p) != Invalid {
		t.Errorf("poison = %v, want invalid", PoisonOf(p))
	}
	p = WithPoison(p, Valid)
	if PoisonOf(p) != Valid {
		t.Errorf("poison = %v, want valid", PoisonOf(p))
	}
}

func TestSubobjIndexAccess(t *testing.T) {
	if s, ok := SubobjIndex(MakeLocal(0, 5, 33)); !ok || s != 33 {
		t.Errorf("local subobj = (%d,%v)", s, ok)
	}
	if s, ok := SubobjIndex(MakeSubheap(0, 2, 200)); !ok || s != 200 {
		t.Errorf("subheap subobj = (%d,%v)", s, ok)
	}
	if _, ok := SubobjIndex(MakeGlobal(0, 9)); ok {
		t.Error("global-table pointer reported a subobject index")
	}
	if _, ok := SubobjIndex(0x1234); ok {
		t.Error("legacy pointer reported a subobject index")
	}
}

func TestWithSubobjIndex(t *testing.T) {
	p := MakeLocal(0x3000, 9, 0)
	q := WithSubobjIndex(p, 5)
	if _, sub := LocalFields(q); sub != 5 {
		t.Errorf("sub = %d, want 5", sub)
	}
	if off, _ := LocalFields(q); off != 9 {
		t.Errorf("granule offset disturbed: %d", off)
	}
	// Out-of-range narrowing poisons Invalid (§3.2 irrecoverable error).
	q = WithSubobjIndex(p, MaxLocalSubobj+1)
	if PoisonOf(q) != Invalid {
		t.Errorf("out-of-range index: poison = %v, want invalid", PoisonOf(q))
	}
	// Global-table pointers cannot narrow: the index update is dropped
	// and the pointer is otherwise untouched (object-granularity only).
	g := MakeGlobal(0x3000, 1)
	if got := WithSubobjIndex(g, 1); got != g {
		t.Error("global-table narrowing modified the pointer")
	}
	// Legacy pointers ignore narrowing.
	if got := WithSubobjIndex(0x4444, 3); got != 0x4444 {
		t.Errorf("legacy narrowing changed pointer: %#x", got)
	}
}

// Property: for every scheme, Make→fields→Addr round-trips and the address
// bits never collide with tag fields.
func TestQuickRoundTrips(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}

	local := func(addr uint64, off, sub uint16) bool {
		addr &= AddrMask
		off %= MaxLocalOffset + 1
		sub %= MaxLocalSubobj + 1
		p := MakeLocal(addr, off, sub)
		o, s := LocalFields(p)
		return o == off && s == sub && Addr(p) == addr &&
			SchemeOf(p) == SchemeLocalOffset && PoisonOf(p) == Valid
	}
	if err := quick.Check(local, cfg); err != nil {
		t.Error(err)
	}

	sub := func(addr uint64, cr, so uint16) bool {
		addr &= AddrMask
		cr %= MaxSubheapCR + 1
		so %= MaxSubheapSubobj + 1
		p := MakeSubheap(addr, cr, so)
		c, s := SubheapFields(p)
		return c == cr && s == so && Addr(p) == addr && SchemeOf(p) == SchemeSubheap
	}
	if err := quick.Check(sub, cfg); err != nil {
		t.Error(err)
	}

	glob := func(addr uint64, idx uint16) bool {
		addr &= AddrMask
		idx %= MaxGlobalIndex + 1
		p := MakeGlobal(addr, idx)
		return GlobalIndex(p) == idx && Addr(p) == addr && SchemeOf(p) == SchemeGlobalTable
	}
	if err := quick.Check(glob, cfg); err != nil {
		t.Error(err)
	}
}

// Property: poison and meta updates are idempotent and field-isolated.
func TestQuickFieldIsolation(t *testing.T) {
	f := func(p uint64, m uint16, ps uint8) bool {
		ps &= 0b11
		q := WithMeta(WithPoison(p, Poison(ps)), m)
		return Meta(q) == m&0xFFF && PoisonOf(q) == Poison(ps) &&
			Addr(q) == Addr(p) && SchemeOf(q) == SchemeOf(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestFormatCoversSchemes(t *testing.T) {
	for _, p := range []uint64{
		0x1000,
		MakeLocal(0x1000, 1, 2),
		MakeSubheap(0x1000, 3, 4),
		MakeGlobal(0x1000, 5),
		WithPoison(MakeLocal(0x1000, 1, 2), Invalid),
	} {
		if Format(p) == "" {
			t.Errorf("empty format for %#x", p)
		}
	}
}

func TestStringers(t *testing.T) {
	if Valid.String() != "valid" || OOB.String() != "oob" || Invalid.String() != "invalid" {
		t.Error("poison strings")
	}
	if Poison(0b10).String() == "" {
		t.Error("unknown poison string empty")
	}
	for s, want := range map[Scheme]string{
		SchemeLegacy: "legacy", SchemeLocalOffset: "local-offset",
		SchemeSubheap: "subheap", SchemeGlobalTable: "global-table",
	} {
		if s.String() != want {
			t.Errorf("%v != %s", s, want)
		}
	}
}
