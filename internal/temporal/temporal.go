// Package temporal implements the generation store backing the
// ModeIFPTemporal runtime mode: an xTag-style allocation-generation
// counter per heap chunk, keyed by the chunk's 48-bit base address.
//
// The scheme repurposes the 12 shared metadata/subobject tag bits (which
// the spatial modes spend on a subobject index) as a generation field:
// malloc stamps the chunk's current generation into the returned pointer,
// every free bumps the stored generation, and promote/check paths compare
// the pointer's generation against the store. A mismatch means the chunk
// was freed (and possibly reallocated) after the pointer was derived —
// a use-after-free — and traps. A free that observes a pointer whose
// generation is already behind the store is a double free.
//
// Generations are narrower than the store's counter: the local-offset
// scheme exposes 6 tag bits and the subheap scheme 8, so a pointer's
// stamped generation is the store value truncated to the scheme's field
// width. After 2^6 (or 2^8) frees of the same chunk base a stale pointer's
// generation can wrap back into validity — the classic generation-tagging
// blind spot, documented in DESIGN.md §14. The store itself counts in
// uint32 so the wrap statistics remain observable even when the tag field
// has wrapped.
package temporal

// Store maps chunk base addresses (48-bit, tag-stripped) to their current
// allocation generation. Generation 0 is the state of a never-freed chunk,
// so pointers stamped at first allocation carry 0 and an absent store
// entry compares equal to them.
type Store struct {
	gens  map[uint64]uint32
	bumps uint64 // total Bump calls, for diagnostics/benchmarks
}

// NewStore returns an empty generation store.
func NewStore() *Store {
	return &Store{gens: make(map[uint64]uint32)}
}

// Gen returns the current generation of the chunk at base (0 if the chunk
// has never been freed).
func (s *Store) Gen(base uint64) uint32 {
	if s == nil {
		return 0
	}
	return s.gens[base]
}

// Bump increments the generation of the chunk at base (a free event) and
// returns the new generation.
func (s *Store) Bump(base uint64) uint32 {
	g := s.gens[base] + 1
	s.gens[base] = g
	s.bumps++
	return g
}

// Bumps returns the total number of free events recorded since the last
// Reset.
func (s *Store) Bumps() uint64 {
	if s == nil {
		return 0
	}
	return s.bumps
}

// Len returns the number of chunk bases with a non-zero generation.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	return len(s.gens)
}

// Reset returns the store to its empty state, retaining the map's storage
// so pooled runtimes do not reallocate it.
func (s *Store) Reset() {
	for k := range s.gens {
		delete(s.gens, k)
	}
	s.bumps = 0
}
