package temporal

import "testing"

func TestStoreBumpAndGen(t *testing.T) {
	s := NewStore()
	if g := s.Gen(0x1000); g != 0 {
		t.Errorf("fresh chunk gen = %d, want 0", g)
	}
	if g := s.Bump(0x1000); g != 1 {
		t.Errorf("first bump = %d, want 1", g)
	}
	if g := s.Bump(0x1000); g != 2 {
		t.Errorf("second bump = %d, want 2", g)
	}
	if g := s.Gen(0x1000); g != 2 {
		t.Errorf("gen after two bumps = %d, want 2", g)
	}
	// Bumps are per-base: a different chunk is unaffected.
	if g := s.Gen(0x2000); g != 0 {
		t.Errorf("unrelated chunk gen = %d, want 0", g)
	}
	if s.Bumps() != 2 || s.Len() != 1 {
		t.Errorf("bumps = %d len = %d, want 2, 1", s.Bumps(), s.Len())
	}
}

func TestStoreReset(t *testing.T) {
	s := NewStore()
	s.Bump(0x1000)
	s.Bump(0x2000)
	s.Reset()
	if s.Len() != 0 || s.Bumps() != 0 {
		t.Errorf("after reset: len = %d bumps = %d, want 0, 0", s.Len(), s.Bumps())
	}
	// A reset store behaves like a fresh one: generation 0 everywhere,
	// counting restarts from scratch.
	if g := s.Gen(0x1000); g != 0 {
		t.Errorf("gen after reset = %d, want 0", g)
	}
	if g := s.Bump(0x1000); g != 1 {
		t.Errorf("bump after reset = %d, want 1", g)
	}
}

// Read-side accessors tolerate a nil store so non-temporal machines can
// consult Gens unconditionally.
func TestNilStoreReads(t *testing.T) {
	var s *Store
	if g := s.Gen(0x1000); g != 0 {
		t.Errorf("nil store Gen = %d, want 0", g)
	}
	if s.Bumps() != 0 || s.Len() != 0 {
		t.Errorf("nil store bumps = %d len = %d, want 0, 0", s.Bumps(), s.Len())
	}
}
