package workloads

import (
	"infat/internal/machine"
	"infat/internal/rt"
)

// --- wolfcrypt-dh: Diffie-Hellman key agreement (WolfCrypt) ---
//
// Profile: big-number modular exponentiation over limb arrays in guest
// memory — compute-heavy with a steady stream of valid promotes on the
// limb buffers (Table 4: ≈100% valid). The original allocates through a
// custom wrapper by function pointer, so allocations carry no layout
// table (§5.2.1) — modeled with MallocBytes.

const dhLimbs = 16 // 1024-bit numbers

func runWolfcryptDH(r *rt.Runtime, scale int) (uint64, error) {
	e := newEnv(r)
	rounds := 2 * scale

	// An mp_int is a small header whose dp member points to the limb
	// buffer; both come from the opaque wrapper. Every big-number routine
	// begins by loading dp from the header — the wolfcrypt promote
	// stream.
	type mpInt struct {
		hdr   rt.Obj
		limbs rt.Obj
	}
	alloc := func() mpInt {
		limbs := e.mallocBytes(dhLimbs * 8)
		hdr := e.mallocBytes(16)
		e.st(hdr.P, dhLimbs, 8, hdr.B) // used count
		e.stp(e.gep(hdr.P, 8, hdr.B), hdr.B, limbs.P, limbs.B)
		return mpInt{hdr: hdr, limbs: limbs}
	}
	type dp struct {
		p rt.Ptr
		b machine.BoundsReg
	}
	getdp := func(n mpInt) dp {
		p, b := e.ldp(e.gep(n.hdr.P, 8, n.hdr.B), n.hdr.B)
		return dp{p, b}
	}
	load := func(d dp, i int64) uint64 { return e.ld(e.gep(d.p, i*8, d.b), 8, d.b) }
	store := func(d dp, i int64, v uint64) { e.st(e.gep(d.p, i*8, d.b), v, 8, d.b) }

	// Modular multiply-accumulate over limb arrays (schoolbook, reduced
	// mod a pseudo-prime limb-wise — arithmetic shape, not real crypto).
	mulmod := func(dstN, aN, bN mpInt) {
		tmpN := alloc()
		dst, a, b, tmp := getdp(dstN), getdp(aN), getdp(bN), getdp(tmpN)
		for i := int64(0); i < dhLimbs; i++ {
			store(tmp, i, 0)
		}
		for i := int64(0); i < dhLimbs && e.err == nil; i++ {
			ai := load(a, i)
			var carry uint64
			for j := int64(0); j+i < dhLimbs && e.err == nil; j++ {
				t := load(tmp, i+j) + ai*load(b, j) + carry
				carry = t >> 32
				store(tmp, i+j, t&0xFFFFFFFF)
				e.tick(8)
			}
		}
		for i := int64(0); i < dhLimbs; i++ {
			store(dst, i, load(tmp, i)%0xFFFFFFFB)
		}
		e.free(tmpN.limbs)
		e.free(tmpN.hdr)
	}

	baseN, expN, accN := alloc(), alloc(), alloc()
	bd, ed, ad := getdp(baseN), getdp(expN), getdp(accN)
	for i := int64(0); i < dhLimbs; i++ {
		store(bd, i, e.randn(1<<32))
		store(ed, i, e.randn(1<<32))
		store(ad, i, 0)
	}
	store(ad, 0, 1)

	for round := 0; round < rounds && e.err == nil; round++ {
		// Square-and-multiply over the low exponent limbs.
		for bit := 0; bit < 24 && e.err == nil; bit++ {
			mulmod(accN, accN, accN)
			ed := getdp(expN)
			if load(ed, int64(bit%dhLimbs))>>uint(bit%32)&1 == 1 {
				mulmod(accN, accN, baseN)
			}
		}
	}
	fd := getdp(accN)
	for i := int64(0); i < dhLimbs; i++ {
		e.mix(load(fd, i))
	}
	return e.sum, e.err
}

// --- sjeng: chess search (SPEC 458.sjeng, reduced depth) ---
//
// Profile: one large instrumented global (the board, global-table
// scheme), heavy recursion with per-node local move arrays (Table 4:
// millions of local objects), and a low valid-promote share (26%) — most
// promotes see NULL move-list terminators or pointers from
// uninstrumented code.

func runSjeng(r *rt.Runtime, scale int) (uint64, error) {
	e := newEnv(r)
	depth := 5
	if scale > 1 {
		depth = 6
	}

	// The global board: 144 squares of 8 bytes -> 1152 bytes, above the
	// local-offset cap, so the global table serves it (the "one global
	// object from sjeng using the global table scheme").
	board := e.globalBytes(144 * 8)
	for sq := int64(0); sq < 144; sq++ {
		v := uint64(0)
		if sq%13 < 4 {
			v = 1 + e.randn(6)
		}
		e.st(e.gep(board.P, sq*8, board.B), v, 8, board.B)
	}

	// Uninstrumented opening-book memory: probing it yields legacy
	// pointers.
	book := e.mallocLegacy(4096)
	bookIdx := e.mallocLegacy(8)
	e.stp(bookIdx.P, bookIdx.B, book.P, book.B)

	// Killer-move table: pointer slots into the board, sparsely filled —
	// early probes promote NULL, later ones promote valid board pointers.
	// Together with the legacy book probes this keeps sjeng's valid-
	// promote share low (Table 4: 26%).
	killers := e.mallocBytes(64 * 8)

	var search func(d int, alpha uint64) uint64
	search = func(d int, alpha uint64) uint64 {
		if d == 0 || e.err != nil {
			return alpha
		}
		mark := e.r.StackMark()
		moves := e.localBytes(32 * 8) // per-node move list
		nMoves := int64(0)
		for sq := int64(0); sq < 144 && nMoves < 32; sq += 7 {
			piece := e.ld(e.gep(board.P, sq*8, board.B), 8, board.B)
			if piece != 0 {
				e.st(e.gep(moves.P, nMoves*8, moves.B), uint64(sq)<<8|piece, 8, moves.B)
				nMoves++
			}
			e.tick(4)
		}
		// Probe the book (legacy promote) every node.
		tbl, tb := e.ldp(bookIdx.P, bookIdx.B)
		e.ld(e.gep(tbl, int64(e.randn(500))*8, tb), 8, tb)

		// Probe both killer slots for this ply (NULL until filled).
		kslot := int64(d*8) % 56
		k1, k1b := e.ldp(e.gep(killers.P, kslot*8, killers.B), killers.B)
		if k1 != 0 {
			e.ld(k1, 8, k1b)
		}
		k2, k2b := e.ldp(e.gep(killers.P, (kslot+1)*8, killers.B), killers.B)
		if k2 != 0 {
			e.ld(k2, 8, k2b)
		}

		best := alpha
		for i := int64(0); i < nMoves && e.err == nil; i++ {
			mv := e.ld(e.gep(moves.P, i*8, moves.B), 8, moves.B)
			sq := int64(mv >> 8)
			// Make move: swap the piece to a nearby square.
			dst := (sq + 11) % 144
			old := e.ld(e.gep(board.P, dst*8, board.B), 8, board.B)
			e.st(e.gep(board.P, dst*8, board.B), mv&0xFF, 8, board.B)
			e.st(e.gep(board.P, sq*8, board.B), 0, 8, board.B)
			score := search(d-1, best^mv&0x7)
			if score > best {
				best = score
				// Record a killer: a pointer to the destination square.
				e.stp(e.gep(killers.P, (kslot+int64(i)%2)*8, killers.B), killers.B,
					e.gep(board.P, dst*8, board.B), board.B)
			}
			// Unmake.
			e.st(e.gep(board.P, sq*8, board.B), mv&0xFF, 8, board.B)
			e.st(e.gep(board.P, dst*8, board.B), old, 8, board.B)
			e.tick(12)
		}
		e.unlocal(moves)
		_ = e.r.StackRelease(mark) // mark comes from StackMark above; cannot fail
		return best
	}
	e.mix(search(depth, 0))
	return e.sum, e.err
}

// --- coremark: embedded-CPU benchmark (EEMBC CoreMark) ---
//
// Profile: a single dynamic allocation through an opaque wrapper, with
// all data structures (linked list, matrix, state machine) built inside
// it (§5.2.2). Pointers into the buffer carry subobject indices but the
// metadata has no layout table, so 29% of promotes attempt narrowing and
// all of it coarsens to object bounds (§5.2.1).

func runCoreMark(r *rt.Runtime, scale int) (uint64, error) {
	e := newEnv(r)
	iters := 8 * scale

	// The single allocation: list area (first 1 KiB) + matrix area.
	const listArea = 1024
	const matDim = 12
	total := uint64(listArea + matDim*matDim*8)
	block := e.mallocBytes(total)

	// Build a linked list of {value, nextOffset} cells inside the block.
	nCells := int64(listArea / 16)
	for i := int64(0); i < nCells; i++ {
		cellP := e.gep(block.P, i*16, block.B)
		e.st(cellP, e.randn(1<<16), 8, block.B)
		next := block.P
		if i+1 < nCells {
			next = e.gep(block.P, (i+1)*16, block.B)
		} else {
			next = 0
		}
		// Interior pointers stored with a (futile) subobject index, as
		// the compiler instruments member derivation on the static type.
		if next != 0 {
			next = e.sub(next, 1)
		}
		e.stp(e.gep(cellP, 8, block.B), block.B, next, machine.Cleared)
	}

	// Matrix init.
	matBase := e.gep(block.P, listArea, block.B)
	for i := int64(0); i < matDim*matDim; i++ {
		e.st(e.gep(matBase, i*8, block.B), e.randn(64), 8, block.B)
	}

	var crc uint64
	for it := 0; it < iters && e.err == nil; it++ {
		// List run: chase the in-block pointers (promotes with failing
		// narrowing).
		cur, cb := e.ldp(e.gep(block.P, 8, block.B), block.B)
		for cur != 0 && e.err == nil {
			crc = crc<<1 ^ e.ld(cur, 8, cb)
			cur, cb = e.ldp(e.gep(cur, 8, cb), cb)
			e.tick(3)
		}
		// Matrix multiply-accumulate run.
		for i := int64(0); i < matDim && e.err == nil; i++ {
			for j := int64(0); j < matDim; j++ {
				var acc uint64
				for k := int64(0); k < matDim; k++ {
					a := e.ld(e.gep(matBase, (i*matDim+k)*8, block.B), 8, block.B)
					b := e.ld(e.gep(matBase, (k*matDim+j)*8, block.B), 8, block.B)
					acc += a * b
					e.tick(4)
				}
				crc ^= acc
			}
		}
		// State-machine run over the list bytes.
		state := uint64(0)
		for i := int64(0); i < nCells; i++ {
			v := e.ld(e.gep(block.P, i*16, block.B), 8, block.B)
			switch {
			case v&3 == 0:
				state = state*3 + 1
			case v&3 == 1:
				state ^= v >> 4
			default:
				state += v & 0xFF
			}
			e.tick(5)
		}
		crc ^= state
	}
	e.mix(crc)
	return e.sum, e.err
}

// --- bzip2: block compression (bzip2 1.0.8 compressing its own tarball) ---
//
// Profile: a handful of very large buffers allocated through function-
// pointer wrappers (opaque — no layout tables, so half the promotes
// attempt narrowing and coarsen), a few instrumented globals including
// global-table ones, and byte-crunching loops. Legacy promotes come from
// the uninstrumented I/O layer.

func runBzip2(r *rt.Runtime, scale int) (uint64, error) {
	e := newEnv(r)
	inputLen := uint64(24*1024) * uint64(scale)

	// Globals: CRC table (large -> global-table scheme), small flag block.
	crcTab := e.globalBytes(256 * 8)
	for i := int64(0); i < 256; i++ {
		v := uint64(i)
		for k := 0; k < 8; k++ {
			if v&1 == 1 {
				v = v>>1 ^ 0xEDB88320EDB88320
			} else {
				v >>= 1
			}
		}
		e.st(e.gep(crcTab.P, i*8, crcTab.B), v, 8, crcTab.B)
	}
	flags := e.globalBytes(64)
	e.st(flags.P, 9, 8, flags.B) // blockSize100k

	// Buffers through the opaque allocator (bzalloc by function pointer).
	input := e.mallocBytes(inputLen)
	work := e.mallocBytes(inputLen + 1024)
	output := e.mallocBytes(inputLen + 2048)

	// Synthesize compressible input (a "source tarball": runs + text).
	for i := uint64(0); i < inputLen; i += 8 {
		var w uint64
		if e.randn(4) == 0 {
			w = 0x2020202020202020 // run of spaces
		} else {
			w = e.rand() & 0x7F7F7F7F7F7F7F7F
		}
		e.st(e.gep(input.P, int64(i), input.B), w, 8, input.B)
	}

	// The uninstrumented stdio layer hands back legacy buffer pointers.
	ioBuf := e.mallocLegacy(8192)
	ioCell := e.mallocLegacy(8)
	e.stp(ioCell.P, ioCell.B, ioBuf.P, ioBuf.B)

	// The EState-style stream state: the compressor keeps its buffer
	// pointers in this struct and reloads them constantly (s->block,
	// s->arr1 ... in the original) — bzip2's valid promote stream.
	state := e.mallocBytes(4 * 8)
	e.stp(e.gep(state.P, 0, state.B), state.B, input.P, input.B)
	// The work pointer is stored as a member-derived pointer: it carries
	// a subobject index but the opaque allocation has no layout table, so
	// every reload's narrowing coarsens to object bounds (§5.2.1: "50% of
	// promote instructions" in bzip2 take subobject-indexed pointers).
	e.stp(e.gep(state.P, 8, state.B), state.B, e.sub(work.P, 1), work.B)
	e.stp(e.gep(state.P, 16, state.B), state.B, output.P, output.B)

	var crc, outLen uint64
	for blk := uint64(0); blk+4096 <= inputLen && e.err == nil; blk += 4096 {
		// "Read" via the legacy FILE* (legacy promote per block).
		buf, bb := e.ldp(ioCell.P, ioCell.B)
		e.ld(buf, 8, bb)

		// RLE pass into work: pointers into the work buffer carry
		// subobject indices from the instrumented struct view of the
		// stream state (narrowing coarsens — no layout table).
		wp := e.sub(work.P, 1)
		wp, wb := e.r.Promote(wp)
		if !e.r.Instrumented() {
			wp, wb = work.P, work.B
		}
		var wo int64
		run := uint64(0)
		prev := uint64(0xFFFF)
		inP, inB := input.P, input.B
		for i := int64(0); i < 4096 && e.err == nil; i++ {
			// Reload the stream pointers from the state struct every 32
			// bytes (register pressure in the original spills them), and
			// probe the legacy I/O layer every 96.
			if i%32 == 0 {
				inP, inB = e.ldp(e.gep(state.P, 0, state.B), state.B)
				wp, wb = e.ldp(e.gep(state.P, 8, state.B), state.B)
			}
			if i%96 == 0 {
				lb, lbb := e.ldp(ioCell.P, ioCell.B)
				e.ld(e.gep(lb, i%8000, lbb), 8, lbb)
			}
			ch := e.ld(e.gep(inP, int64(blk)+i, inB), 1, inB)
			if ch == prev && run < 255 {
				run++
			} else {
				e.st(e.gep(wp, wo, wb), prev&0xFF, 1, wb)
				e.st(e.gep(wp, wo+1, wb), run&0xFF, 1, wb)
				wo += 2
				prev, run = ch, 1
			}
			crc = crc<<1 ^ e.ld(e.gep(crcTab.P, int64(ch)*8, crcTab.B), 8, crcTab.B)
			e.tick(4)
		}

		// "Huffman" pass: fold work bytes into the output with a moving
		// code table (pure compute + buffer traffic).
		outP, outB := output.P, output.B
		for i := int64(0); i < wo && e.err == nil; i += 2 {
			if i%64 == 0 {
				outP, outB = e.ldp(e.gep(state.P, 16, state.B), state.B)
			}
			sym := e.ld(e.gep(wp, i, wb), 1, wb)
			cnt := e.ld(e.gep(wp, i+1, wb), 1, wb)
			code := sym<<3 ^ cnt
			e.st(e.gep(outP, int64(outLen), outB), code&0xFF, 1, outB)
			outLen++
			e.tick(6)
		}
	}
	e.mix(crc)
	e.mix(outLen)
	e.free(input)
	e.free(work)
	e.free(output)
	return e.sum, e.err
}
