package workloads

import (
	"infat/internal/layout"
	"infat/internal/machine"
	"infat/internal/rt"
)

// --- bh: Barnes-Hut n-body (Olden) ---
//
// Pointer profile per Table 4: a huge stream of *local* objects (vector
// temporaries in the force kernel), a modest number of heap objects
// (bodies and tree cells, some with layout tables), and promotes that are
// almost all valid (the tree is dense).

// Node types here and below are package-level and shared across runs:
// read-only after init (see the package comment's concurrency contract).
var (
	bhVecT  = layout.ArrayOf(layout.Double, 3)
	bhBodyT = layout.StructOf("body",
		layout.F("kind", layout.Long), // 1 = body
		layout.F("mass", layout.Long),
		layout.F("pos", layout.ArrayOf(layout.Long, 3)),
		layout.F("vel", layout.ArrayOf(layout.Long, 3)),
		layout.F("next", layout.PointerTo(nil)))
	bhCellT = layout.StructOf("cell",
		layout.F("kind", layout.Long), // 0 = cell
		layout.F("mass", layout.Long),
		layout.F("mask", layout.Long), // bitmap of occupied child slots
		layout.F("pos", layout.ArrayOf(layout.Long, 3)),
		layout.F("child", layout.ArrayOf(layout.PointerTo(nil), 4)))
)

func runBH(r *rt.Runtime, scale int) (uint64, error) {
	e := newEnv(r)
	nBodies := 48 * scale
	steps := 2

	const (
		bodyPos  = 16 // body.pos offset
		bodyNext = 64 // body.next offset
		cellMask = 16 // cell.mask offset
		cellPos  = 24 // cell.pos offset
	)
	childOff := func(k uint64) int64 { return 48 + int64(k)*8 }

	// Allocate bodies with pseudo-random positions.
	bodies := make([]rt.Obj, 0, nBodies)
	for i := 0; i < nBodies; i++ {
		b := e.malloc(bhBodyT, 1)
		e.stf(b.P, b.B, bhBodyT, "kind", 1)
		e.stf(b.P, b.B, bhBodyT, "mass", 1+e.randn(8))
		for d := int64(0); d < 3; d++ {
			e.st(e.gep(b.P, bodyPos+8*d, b.B), e.randn(1024), 8, b.B)
		}
		bodies = append(bodies, b)
	}

	// Build a quadtree (4-ary here; the original is an octree) by
	// repeated insertion keyed on position bits. The cell's mask word
	// records which child slots are occupied so traversals only load
	// live child pointers — the original walks typed cell/body unions
	// and almost never sees NULL (Table 4: bh 99% valid promotes).
	root := e.malloc(bhCellT, 1)
	for _, b := range bodies {
		x := e.ld(e.gep(b.P, bodyPos, b.B), 8, b.B)
		y := e.ld(e.gep(b.P, bodyPos+8, b.B), 8, b.B)
		cur, cb := root.P, root.B
		for level := 0; level < 3 && e.err == nil; level++ {
			k := (x>>uint(level)&1)<<1 | y>>uint(level)&1
			mask := e.ld(e.gep(cur, cellMask, cb), 8, cb)
			if mask>>k&1 == 0 {
				nc := e.malloc(bhCellT, 1)
				e.stp(e.gep(cur, childOff(k), cb), cb, nc.P, nc.B)
				e.st(e.gep(cur, cellMask, cb), mask|1<<k, 8, cb)
				cur, cb = nc.P, nc.B
			} else {
				cur, cb = e.ldp(e.gep(cur, childOff(k), cb), cb)
			}
			e.tick(6)
		}
		// Hang the body on the leaf cell's last child slot list.
		mask := e.ld(e.gep(cur, cellMask, cb), 8, cb)
		if mask>>3&1 == 1 {
			old, ob := e.ldp(e.gep(cur, childOff(3), cb), cb)
			e.stp(e.gep(b.P, bodyNext, b.B), b.B, old, ob)
		}
		e.st(e.gep(cur, cellMask, cb), mask|1<<3, 8, cb)
		e.stp(e.gep(cur, childOff(3), cb), cb, b.P, b.B)
	}

	// Force computation: for each body, walk the whole tree; each
	// interaction builds a local displacement vector (the bh local-object
	// storm of Table 4) and runs the gravity kernel.
	interact := func(p rt.Ptr, b machine.BoundsReg, posOff int64, body rt.Obj) {
		mark := e.r.StackMark()
		dv := e.local(bhVecT)
		for d := int64(0); d < 3; d++ {
			bp := e.ld(e.gep(body.P, bodyPos+8*d, body.B), 8, body.B)
			cp := e.ld(e.gep(p, posOff+8*d, b), 8, b)
			e.st(e.gep(dv.P, 8*d, dv.B), bp-cp, 8, dv.B)
			e.tick(4)
		}
		v0 := e.ld(dv.P, 8, dv.B)
		e.mix(v0)
		// Gravity kernel: distance, inverse square root iterations,
		// acceleration update (pure FP compute in the original).
		e.tick(34)
		e.stf(body.P, body.B, bhBodyT, "mass",
			e.ldf(body.P, body.B, bhBodyT, "mass")+(v0&3))
		e.unlocal(dv)
		_ = e.r.StackRelease(mark) // mark comes from StackMark above; cannot fail
	}
	var walk func(p rt.Ptr, b machine.BoundsReg, body rt.Obj, depth int)
	walk = func(p rt.Ptr, b machine.BoundsReg, body rt.Obj, depth int) {
		if p == 0 || e.err != nil || depth > 8 {
			return
		}
		if kind := e.ldf(p, b, bhBodyT, "kind"); kind == 1 {
			// A body: interact and follow the collision list.
			interact(p, b, bodyPos, body)
			next, nb := e.ldp(e.gep(p, bodyNext, b), b)
			walk(next, nb, body, depth+1)
			return
		}
		interact(p, b, cellPos, body)
		mask := e.ld(e.gep(p, cellMask, b), 8, b)
		for k := uint64(0); k < 4; k++ {
			if mask>>k&1 == 0 {
				continue
			}
			child, chb := e.ldp(e.gep(p, childOff(k), b), b)
			walk(child, chb, body, depth+1)
		}
	}
	for s := 0; s < steps; s++ {
		for _, b := range bodies {
			walk(root.P, root.B, b, 0)
		}
	}

	for _, b := range bodies {
		e.mix(e.ldf(b.P, b.B, bhBodyT, "mass"))
		e.free(b)
	}
	return e.sum, e.err
}

// --- bisort: bitonic sort on a binary tree (Olden) ---
//
// Profile: one wave of heap node allocations, then value-swapping tree
// traversals; about half of child-pointer promotes hit NULL at the
// fringe (Table 4: 55% valid).

var bisortNodeT = layout.StructOf("bisort_node",
	layout.F("value", layout.Long),
	layout.F("left", layout.PointerTo(nil)),
	layout.F("right", layout.PointerTo(nil)))

func runBisort(r *rt.Runtime, scale int) (uint64, error) {
	e := newEnv(r)
	depth := 9 // 511 nodes at scale 1
	for s := scale; s > 1; s /= 2 {
		depth++
	}

	var build func(d int) (rt.Ptr, machine.BoundsReg)
	build = func(d int) (rt.Ptr, machine.BoundsReg) {
		if d == 0 || e.err != nil {
			return 0, machine.Cleared
		}
		n := e.malloc(bisortNodeT, 1)
		e.stf(n.P, n.B, bisortNodeT, "value", e.randn(1<<20))
		l, lb := build(d - 1)
		rp, rb := build(d - 1)
		e.stpf(n.P, n.B, bisortNodeT, "left", l, lb)
		e.stpf(n.P, n.B, bisortNodeT, "right", rp, rb)
		return n.P, n.B
	}
	root, rootB := build(depth)

	// Bitonic merge: swap values across subtrees according to direction.
	var merge func(p rt.Ptr, b machine.BoundsReg, up bool)
	merge = func(p rt.Ptr, b machine.BoundsReg, up bool) {
		if p == 0 || e.err != nil {
			return
		}
		l, lb := e.ldpf(p, b, bisortNodeT, "left")
		rp, rb := e.ldpf(p, b, bisortNodeT, "right")
		if l != 0 && rp != 0 {
			lv := e.ldf(l, lb, bisortNodeT, "value")
			rv := e.ldf(rp, rb, bisortNodeT, "value")
			if (lv > rv) == up {
				e.stf(l, lb, bisortNodeT, "value", rv)
				e.stf(rp, rb, bisortNodeT, "value", lv)
			}
			e.tick(5)
		}
		merge(l, lb, up)
		merge(rp, rb, !up)
	}
	for pass := 0; pass < 36; pass++ {
		merge(root, rootB, pass%2 == 0)
	}

	// Checksum: in-order fold.
	var fold func(p rt.Ptr, b machine.BoundsReg)
	fold = func(p rt.Ptr, b machine.BoundsReg) {
		if p == 0 || e.err != nil {
			return
		}
		l, lb := e.ldpf(p, b, bisortNodeT, "left")
		fold(l, lb)
		e.mix(e.ldf(p, b, bisortNodeT, "value"))
		rp, rb := e.ldpf(p, b, bisortNodeT, "right")
		fold(rp, rb)
	}
	fold(root, rootB)
	return e.sum, e.err
}

// --- em3d: electromagnetic wave propagation on a bipartite graph (Olden) ---
//
// Profile: nodes plus *array* allocations (neighbour-pointer arrays and
// coefficient arrays of varying degree). Under the subheap allocator the
// varied array sizes land in separate blocks — the paper's worst subheap
// memory overhead (§5.2.3).

var em3dNodeT = layout.StructOf("em3d_node",
	layout.F("value", layout.Long),
	layout.F("from_count", layout.Long),
	layout.F("from_nodes", layout.PointerTo(nil)),
	layout.F("coeffs", layout.PointerTo(nil)))

func runEM3D(r *rt.Runtime, scale int) (uint64, error) {
	e := newEnv(r)
	nNodes := 120 * scale
	iters := 20
	ptrT := layout.PointerTo(nil)

	type node struct{ o, fromArr, coeffArr rt.Obj }
	mk := func() []node {
		ns := make([]node, nNodes)
		for i := range ns {
			ns[i].o = e.malloc(em3dNodeT, 1)
			e.stf(ns[i].o.P, ns[i].o.B, em3dNodeT, "value", e.randn(1<<16))
		}
		return ns
	}
	eNodes, hNodes := mk(), mk()

	link := func(ns, peers []node) {
		for i := range ns {
			deg := 4 + e.randn(12) // varied degrees -> varied array sizes
			ns[i].fromArr = e.malloc(ptrT, deg)
			ns[i].coeffArr = e.malloc(layout.Long, deg)
			e.stf(ns[i].o.P, ns[i].o.B, em3dNodeT, "from_count", deg)
			e.stpf(ns[i].o.P, ns[i].o.B, em3dNodeT, "from_nodes", ns[i].fromArr.P, ns[i].fromArr.B)
			e.stpf(ns[i].o.P, ns[i].o.B, em3dNodeT, "coeffs", ns[i].coeffArr.P, ns[i].coeffArr.B)
			for j := uint64(0); j < deg; j++ {
				peer := peers[e.randn(uint64(len(peers)))]
				e.stp(e.gep(ns[i].fromArr.P, int64(j)*8, ns[i].fromArr.B), ns[i].fromArr.B, peer.o.P, peer.o.B)
				e.st(e.gep(ns[i].coeffArr.P, int64(j)*8, ns[i].coeffArr.B), 1+e.randn(7), 8, ns[i].coeffArr.B)
			}
		}
	}
	link(eNodes, hNodes)
	link(hNodes, eNodes)

	compute := func(ns []node) {
		for i := range ns {
			p, b := ns[i].o.P, ns[i].o.B
			deg := e.ldf(p, b, em3dNodeT, "from_count")
			from, fb := e.ldpf(p, b, em3dNodeT, "from_nodes")
			coef, cb := e.ldpf(p, b, em3dNodeT, "coeffs")
			acc := e.ldf(p, b, em3dNodeT, "value")
			for j := uint64(0); j < deg && e.err == nil; j++ {
				peer, pb := e.ldp(e.gep(from, int64(j)*8, fb), fb)
				c := e.ld(e.gep(coef, int64(j)*8, cb), 8, cb)
				pv := e.ldf(peer, pb, em3dNodeT, "value")
				acc -= c * pv
				e.tick(3)
			}
			e.stf(p, b, em3dNodeT, "value", acc)
		}
	}
	for it := 0; it < iters; it++ {
		compute(eNodes)
		compute(hNodes)
	}
	for i := range eNodes {
		e.mix(e.ldf(eNodes[i].o.P, eNodes[i].o.B, em3dNodeT, "value"))
		e.mix(e.ldf(hNodes[i].o.P, hNodes[i].o.B, em3dNodeT, "value"))
	}
	return e.sum, e.err
}

// --- health: Colombian health-care simulation (Olden) ---
//
// Profile: a 4-ary village tree whose patient linked lists grow over the
// run; most of the time goes to list traversal, with a working set well
// past L1D — the wrapped allocator's per-object metadata doubles the miss
// rate (the paper's worst wrapped overhead).

var (
	healthPatientT = layout.StructOf("patient",
		layout.F("hosts", layout.Long),
		layout.F("time", layout.Long),
		layout.F("next", layout.PointerTo(nil)))
	healthVillageT = layout.StructOf("village",
		layout.F("id", layout.Long),
		layout.F("waiting", layout.PointerTo(nil)),
		layout.F("child", layout.ArrayOf(layout.PointerTo(nil), 4)))
)

func runHealth(r *rt.Runtime, scale int) (uint64, error) {
	e := newEnv(r)
	depth := 3
	steps := 30 * scale

	var villages []rt.Obj
	var build func(d int) (rt.Ptr, machine.BoundsReg)
	build = func(d int) (rt.Ptr, machine.BoundsReg) {
		if d < 0 || e.err != nil {
			return 0, machine.Cleared
		}
		v := e.malloc(healthVillageT, 1)
		villages = append(villages, v)
		e.stf(v.P, v.B, healthVillageT, "id", uint64(len(villages)))
		for k := int64(0); k < 4; k++ {
			c, cb := build(d - 1)
			e.stp(e.gep(v.P, 16+8*k, v.B), v.B, c, cb)
		}
		return v.P, v.B
	}
	build(depth)

	// A record cell holding a pointer to the most recently admitted
	// patient's `time` member: the reload promotes a subobject-indexed
	// pointer through the layout table (the paper's health: <1% of
	// promotes narrow, all successfully).
	lastAdmit := e.mallocBytes(8)

	for s := 0; s < steps; s++ {
		for _, v := range villages {
			// New patient arrives at the head of the waiting list.
			p := e.malloc(healthPatientT, 1)
			e.stf(p.P, p.B, healthPatientT, "time", uint64(s))
			head, hb := e.ldpf(v.P, v.B, healthVillageT, "waiting")
			e.stpf(p.P, p.B, healthPatientT, "next", head, hb)
			e.stpf(v.P, v.B, healthVillageT, "waiting", p.P, p.B)
			e.stp(lastAdmit.P, lastAdmit.B,
				e.fieldPtr(p.P, p.B, healthPatientT, "time"), p.B)
			tp, tb := e.ldp(lastAdmit.P, lastAdmit.B)
			e.mix(e.ld(tp, 8, tb))

			// Traverse the list, aging every patient (the hot loop).
			cur, cb := e.ldpf(v.P, v.B, healthVillageT, "waiting")
			for cur != 0 && e.err == nil {
				t := e.ldf(cur, cb, healthPatientT, "time")
				e.stf(cur, cb, healthPatientT, "hosts", t+uint64(s))
				e.tick(7) // triage arithmetic
				cur, cb = e.ldpf(cur, cb, healthPatientT, "next")
			}
			// Census pass: a second traversal tallying treatment state.
			var treated uint64
			cur, cb = e.ldpf(v.P, v.B, healthVillageT, "waiting")
			for cur != 0 && e.err == nil {
				treated += e.ldf(cur, cb, healthPatientT, "hosts") & 1
				e.tick(3)
				cur, cb = e.ldpf(cur, cb, healthPatientT, "next")
			}
			e.stf(v.P, v.B, healthVillageT, "id", treated)
		}
	}
	for _, v := range villages {
		n := uint64(0)
		cur, cb := e.ldpf(v.P, v.B, healthVillageT, "waiting")
		for cur != 0 && e.err == nil {
			n++
			e.mix(e.ldf(cur, cb, healthPatientT, "hosts"))
			cur, cb = e.ldpf(cur, cb, healthPatientT, "next")
		}
		e.mix(n)
	}
	return e.sum, e.err
}

// --- mst: minimum spanning tree with hash tables (Olden) ---
//
// Profile: vertices with chained hash tables; a noticeable share of
// promotes bypass metadata lookup — chain-end NULLs and entries allocated
// by an "uninstrumented library" (legacy pointers), the paper's 60/40
// legacy/NULL bypass mix.

var (
	mstVertexT = layout.StructOf("mst_vertex",
		layout.F("mindist", layout.Long),
		layout.F("next", layout.PointerTo(nil)),
		layout.F("hash", layout.PointerTo(nil)))
	mstEntryT = layout.StructOf("mst_entry",
		layout.F("key", layout.Long),
		layout.F("weight", layout.Long),
		layout.F("next", layout.PointerTo(nil)))
)

func runMST(r *rt.Runtime, scale int) (uint64, error) {
	e := newEnv(r)
	nVerts := 64 * scale
	buckets := uint64(2)
	ptrT := layout.PointerTo(nil)

	verts := make([]rt.Obj, nVerts)
	for i := range verts {
		verts[i] = e.malloc(mstVertexT, 1)
		e.stf(verts[i].P, verts[i].B, mstVertexT, "mindist", 1<<30)
		ht := e.malloc(ptrT, buckets)
		e.stpf(verts[i].P, verts[i].B, mstVertexT, "hash", ht.P, ht.B)
		// Edges to a handful of other vertices; ~1/6 of the entries come
		// from the legacy helper (uninstrumented code).
		for j := 0; j < 6; j++ {
			var entry rt.Obj
			if e.randn(6) == 0 {
				entry = e.mallocLegacy(mstEntryT.Size())
			} else {
				entry = e.malloc(mstEntryT, 1)
			}
			key := e.randn(uint64(nVerts))
			e.stf(entry.P, entry.B, mstEntryT, "key", key)
			e.stf(entry.P, entry.B, mstEntryT, "weight", 1+e.randn(97))
			slot := e.gep(ht.P, int64(key%buckets)*8, ht.B)
			old, ob := e.ldp(slot, ht.B)
			e.stpf(entry.P, entry.B, mstEntryT, "next", old, ob)
			e.stp(slot, ht.B, entry.P, entry.B)
		}
	}

	// Prim-style sweep: repeatedly scan all vertices' hash chains for the
	// lightest edge out of the grown set.
	inTree := make([]bool, nVerts)
	inTree[0] = true
	total := uint64(0)
	for added := 1; added < nVerts*3/4 && e.err == nil; added++ {
		best := uint64(1 << 30)
		bestV := -1
		for i := range verts {
			if !inTree[i] {
				continue
			}
			ht, hb := e.ldpf(verts[i].P, verts[i].B, mstVertexT, "hash")
			for bkt := uint64(0); bkt < buckets && e.err == nil; bkt++ {
				cur, cb := e.ldp(e.gep(ht, int64(bkt)*8, hb), hb)
				for cur != 0 && e.err == nil {
					key := e.ldf(cur, cb, mstEntryT, "key")
					w := e.ldf(cur, cb, mstEntryT, "weight")
					if !inTree[key%uint64(nVerts)] && w < best {
						best = w
						bestV = int(key % uint64(nVerts))
					}
					e.tick(9)
					cur, cb = e.ldpf(cur, cb, mstEntryT, "next")
				}
			}
		}
		if bestV < 0 {
			break
		}
		inTree[bestV] = true
		total += best
	}
	e.mix(total)
	return e.sum, e.err
}
