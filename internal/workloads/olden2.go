package workloads

import (
	"infat/internal/layout"
	"infat/internal/machine"
	"infat/internal/rt"
)

// --- perimeter: quadtree perimeter computation (Olden) ---
//
// Profile: a very large number of small same-type heap allocations and a
// deeply recursive traversal that spills bounds registers across frames
// (stbnd/ldbnd traffic). The subheap allocator's cheap pool path makes
// the instrumented run *faster* than baseline (Figure 10's negative
// overhead).

// Node types here and below are package-level and shared across runs:
// read-only after init (see the package comment's concurrency contract).
var perimNodeT = layout.StructOf("quad",
	layout.F("color", layout.Long),
	layout.F("child", layout.ArrayOf(layout.PointerTo(nil), 4)))

func runPerimeter(r *rt.Runtime, scale int) (uint64, error) {
	e := newEnv(r)
	depth := 6
	for s := scale; s > 1; s /= 2 {
		depth++
	}

	var build func(d int) (rt.Ptr, machine.BoundsReg)
	build = func(d int) (rt.Ptr, machine.BoundsReg) {
		if e.err != nil {
			return 0, machine.Cleared
		}
		n := e.malloc(perimNodeT, 1)
		if d == 0 || e.randn(8) == 0 {
			e.stf(n.P, n.B, perimNodeT, "color", e.randn(2)) // leaf: black/white
			return n.P, n.B
		}
		e.stf(n.P, n.B, perimNodeT, "color", 2) // grey
		for k := int64(0); k < 4; k++ {
			c, cb := build(d - 1)
			e.stp(e.gep(n.P, 8+8*k, n.B), n.B, c, cb)
		}
		return n.P, n.B
	}
	root, rootB := build(depth)

	var perim func(p rt.Ptr, b machine.BoundsReg, size uint64) uint64
	perim = func(p rt.Ptr, b machine.BoundsReg, size uint64) uint64 {
		if p == 0 || e.err != nil {
			return 0
		}
		color := e.ldf(p, b, perimNodeT, "color")
		if color != 2 {
			e.tick(3)
			return color * size
		}
		// Recursive descent: spill/reload this frame's bounds register
		// (callee-saved traffic, §4.1.2).
		mark := e.r.StackMark()
		slot, serr := e.r.StackRaw(16)
		e.fail(serr)
		e.fail(e.r.SpillBounds(slot, b))
		var total uint64
		for k := int64(0); k < 4; k++ {
			c, cb := e.ldp(e.gep(p, 8+8*k, b), b)
			total += perim(c, cb, size/2)
		}
		rb, err := e.r.ReloadBounds(slot)
		e.fail(err)
		_ = rb
		_ = e.r.StackRelease(mark) // mark comes from StackMark above; cannot fail
		return total
	}
	e.mix(perim(root, rootB, 1<<uint(depth)))
	return e.sum, e.err
}

// --- power: power-system pricing (Olden) ---
//
// Profile: a shallow customer tree built once, then overwhelmingly
// numeric computation — the paper measures essentially zero overhead
// (1.00x): promotes are rare relative to compute.

var powerNodeT = layout.StructOf("power_node",
	layout.F("demand", layout.Long),
	layout.F("price", layout.Long),
	layout.F("nkids", layout.Long),
	layout.F("kids", layout.ArrayOf(layout.PointerTo(nil), 8)))

func runPower(r *rt.Runtime, scale int) (uint64, error) {
	e := newEnv(r)
	iters := 8 * scale

	// Three-level tree: root -> 8 laterals -> 8 branches each.
	var build func(d int) (rt.Ptr, machine.BoundsReg)
	build = func(d int) (rt.Ptr, machine.BoundsReg) {
		if e.err != nil {
			return 0, machine.Cleared
		}
		n := e.malloc(powerNodeT, 1)
		e.stf(n.P, n.B, powerNodeT, "demand", 1+e.randn(100))
		if d > 0 {
			e.stf(n.P, n.B, powerNodeT, "nkids", 8)
			for k := int64(0); k < 8; k++ {
				c, cb := build(d - 1)
				e.stp(e.gep(n.P, 24+8*k, n.B), n.B, c, cb)
			}
		}
		return n.P, n.B
	}
	root, rootB := build(2)

	var visit func(p rt.Ptr, b machine.BoundsReg, price uint64) uint64
	visit = func(p rt.Ptr, b machine.BoundsReg, price uint64) uint64 {
		if p == 0 || e.err != nil {
			return 0
		}
		demand := e.ldf(p, b, powerNodeT, "demand")
		// The numeric optimization loop: Newton-style iterations, all
		// register compute in the original.
		v := demand
		for i := 0; i < 40; i++ {
			v = (v + price*demand/(v+1)) / 2
			e.tick(6)
		}
		e.stf(p, b, powerNodeT, "price", v)
		total := v
		nkids := int64(e.ldf(p, b, powerNodeT, "nkids"))
		for k := int64(0); k < nkids; k++ {
			c, cb := e.ldp(e.gep(p, 24+8*k, b), b)
			total += visit(c, cb, price)
		}
		return total
	}
	for it := 0; it < iters; it++ {
		e.mix(visit(root, rootB, uint64(it)+1))
	}
	return e.sum, e.err
}

// --- treeadd: recursive tree sum (Olden) ---
//
// Profile: allocation-dominated — build a full binary tree, sum it once.
// Exactly half the child promotes hit NULL (Table 4: 50% valid), and the
// subheap pool's cheap allocation path beats glibc by enough to go
// faster than baseline (Figure 10: 0.61x dynamic instructions).

var treeaddNodeT = layout.StructOf("tree_t",
	layout.F("val", layout.Long),
	layout.F("left", layout.PointerTo(nil)),
	layout.F("right", layout.PointerTo(nil)))

func runTreeAdd(r *rt.Runtime, scale int) (uint64, error) {
	e := newEnv(r)
	depth := 11 // 2047 nodes at scale 1
	for s := scale; s > 1; s /= 2 {
		depth++
	}

	var build func(d int) (rt.Ptr, machine.BoundsReg)
	build = func(d int) (rt.Ptr, machine.BoundsReg) {
		if d == 0 || e.err != nil {
			return 0, machine.Cleared
		}
		n := e.malloc(treeaddNodeT, 1)
		e.stf(n.P, n.B, treeaddNodeT, "val", 1)
		l, lb := build(d - 1)
		rp, rb := build(d - 1)
		e.stpf(n.P, n.B, treeaddNodeT, "left", l, lb)
		e.stpf(n.P, n.B, treeaddNodeT, "right", rp, rb)
		return n.P, n.B
	}
	root, rootB := build(depth)

	var sum func(p rt.Ptr, b machine.BoundsReg) uint64
	sum = func(p rt.Ptr, b machine.BoundsReg) uint64 {
		if p == 0 || e.err != nil {
			return 0
		}
		l, lb := e.ldpf(p, b, treeaddNodeT, "left")
		rp, rb := e.ldpf(p, b, treeaddNodeT, "right")
		return e.ldf(p, b, treeaddNodeT, "val") + sum(l, lb) + sum(rp, rb)
	}
	e.mix(sum(root, rootB))
	return e.sum, e.err
}

// --- tsp: travelling salesman via closest-point heuristic (Olden) ---
//
// Profile: a balanced tree of cities is flattened into a circular tour
// list; repeated list splices load pointers from memory (valid promotes)
// with modest NULL traffic from the build phase.

var tspNodeT = layout.StructOf("tsp_node",
	layout.F("x", layout.Long),
	layout.F("y", layout.Long),
	layout.F("left", layout.PointerTo(nil)),
	layout.F("right", layout.PointerTo(nil)),
	layout.F("next", layout.PointerTo(nil)))

func runTSP(r *rt.Runtime, scale int) (uint64, error) {
	e := newEnv(r)
	nCities := 512 * scale

	cities := make([]rt.Obj, nCities)
	for i := range cities {
		cities[i] = e.malloc(tspNodeT, 1)
		e.stf(cities[i].P, cities[i].B, tspNodeT, "x", e.randn(1<<16))
		e.stf(cities[i].P, cities[i].B, tspNodeT, "y", e.randn(1<<16))
	}
	// Chain into an initial tour.
	for i := range cities {
		next := cities[(i+1)%len(cities)]
		e.stpf(cities[i].P, cities[i].B, tspNodeT, "next", next.P, next.B)
	}

	// 2-opt-ish improvement: walk the tour, compare distances, splice.
	dist := func(a rt.Ptr, ab machine.BoundsReg, b rt.Ptr, bb machine.BoundsReg) uint64 {
		ax := e.ldf(a, ab, tspNodeT, "x")
		ay := e.ldf(a, ab, tspNodeT, "y")
		bx := e.ldf(b, bb, tspNodeT, "x")
		by := e.ldf(b, bb, tspNodeT, "y")
		dx, dy := ax-bx, ay-by
		e.tick(8)
		return dx*dx + dy*dy
	}
	for pass := 0; pass < 12 && e.err == nil; pass++ {
		cur, cb := cities[0].P, cities[0].B
		for i := 0; i < nCities-2 && e.err == nil; i++ {
			n1, n1b := e.ldpf(cur, cb, tspNodeT, "next")
			n2, n2b := e.ldpf(n1, n1b, tspNodeT, "next")
			if n2 == 0 {
				break
			}
			if dist(cur, cb, n2, n2b) < dist(cur, cb, n1, n1b) {
				// Swap n1 and n2 in the tour.
				n3, n3b := e.ldpf(n2, n2b, tspNodeT, "next")
				e.stpf(cur, cb, tspNodeT, "next", n2, n2b)
				e.stpf(n2, n2b, tspNodeT, "next", n1, n1b)
				e.stpf(n1, n1b, tspNodeT, "next", n3, n3b)
			}
			cur, cb = e.ldpf(cur, cb, tspNodeT, "next")
		}
	}

	// Tour length checksum.
	cur, cb := cities[0].P, cities[0].B
	var total uint64
	for i := 0; i < nCities && e.err == nil; i++ {
		n, nb := e.ldpf(cur, cb, tspNodeT, "next")
		total += dist(cur, cb, n, nb)
		cur, cb = n, nb
	}
	e.mix(total)
	return e.sum, e.err
}

// --- voronoi: Voronoi diagram over quad-edges (Olden) ---
//
// Profile: edge records allocated four-at-a-time, with a large share of
// promotes seeing legacy pointers (the original leans on uninstrumented
// libc math helpers whose results flow back through pointer-laden
// structures) — Table 4 shows only 44% of voronoi promotes are valid.

var voronoiEdgeT = layout.StructOf("qedge",
	layout.F("ox", layout.Long),
	layout.F("oy", layout.Long),
	layout.F("next", layout.PointerTo(nil)),
	layout.F("rot", layout.PointerTo(nil)))

func runVoronoi(r *rt.Runtime, scale int) (uint64, error) {
	e := newEnv(r)
	nSites := 128 * scale

	// Legacy scratch table modeling libc's internal buffers: pointers
	// into it circulate through the working set.
	scratch := e.mallocLegacy(4096)

	edges := make([]rt.Obj, 0, nSites*2)
	for i := 0; i < nSites; i++ {
		// A quad-edge allocation: 4 edge records in one chunk.
		q := e.malloc(voronoiEdgeT, 4)
		edges = append(edges, q)
		for k := int64(0); k < 4; k++ {
			ep := e.gep(q.P, k*int64(voronoiEdgeT.Size()), q.B)
			e.st(e.gep(ep, 0, q.B), e.randn(1<<12), 8, q.B)
			e.st(e.gep(ep, 8, q.B), e.randn(1<<12), 8, q.B)
			// rot links within the quad (offset 24); next (offset 16)
			// alternates between a real edge and a pointer into the
			// legacy scratch region.
			rot := e.gep(q.P, ((k+1)%4)*int64(voronoiEdgeT.Size()), q.B)
			e.stp(e.gep(ep, 24, q.B), q.B, rot, q.B)
			if k%2 == 0 && len(edges) > 1 {
				prev := edges[len(edges)-2]
				e.stp(e.gep(ep, 16, q.B), q.B, prev.P, prev.B)
			} else {
				lp := e.gep(scratch.P, int64(e.randn(500))*8, scratch.B)
				e.stp(e.gep(ep, 16, q.B), q.B, lp, scratch.B)
			}
		}
	}

	// Walk the structure: each hop promotes either a tagged edge pointer
	// or a legacy scratch pointer.
	var total uint64
	for rep := 0; rep < 6; rep++ {
		for i := range edges {
			cur, cb := edges[i].P, edges[i].B
			for hop := rep; hop < 14 && cur != 0 && e.err == nil; hop++ {
				total += e.ldf(cur, cb, voronoiEdgeT, "ox")
				e.tick(6)
				var next rt.Ptr
				var nb machine.BoundsReg
				if hop%2 == 0 {
					next, nb = e.ldpf(cur, cb, voronoiEdgeT, "next")
				} else {
					next, nb = e.ldpf(cur, cb, voronoiEdgeT, "rot")
				}
				if next == 0 {
					break
				}
				cur, cb = next, nb
			}
		}
	}
	e.mix(total)
	return e.sum, e.err
}
