package workloads

import (
	"infat/internal/layout"
	"infat/internal/machine"
	"infat/internal/rt"
)

// --- anagram (PtrDist) ---
//
// Profile: the paper singles anagram out for its legacy-pointer promotes:
// each isalpha() compiles to a __ctype_b_loc() call returning a *legacy*
// double pointer, whose dereference is followed by a promote that always
// sees an uninstrumented pointer (§5.2.1). Only 41% of its promotes are
// valid.

func runAnagram(r *rt.Runtime, scale int) (uint64, error) {
	e := newEnv(r)
	nWords := 160 * scale

	// The libc character-traits table and the double pointer returned by
	// __ctype_b_loc(): both live in uninstrumented memory.
	ctype := e.mallocLegacy(2048)
	for c := int64(0); c < 256; c++ {
		isAlpha := uint64(0)
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			isAlpha = 1
		}
		e.st(e.gep(ctype.P, c*8, ctype.B), isAlpha, 8, ctype.B)
	}
	ctypeLoc := e.mallocLegacy(8)
	e.stp(ctypeLoc.P, ctypeLoc.B, ctype.P, ctype.B)

	// Dictionary words: heap char buffers.
	words := make([]rt.Obj, nWords)
	lens := make([]int64, nWords)
	for i := range words {
		n := 3 + int64(e.randn(8))
		lens[i] = n
		words[i] = e.malloc(layout.Char, uint64(n))
		for j := int64(0); j < n; j++ {
			e.st(e.gep(words[i].P, j, words[i].B), 'a'+e.randn(26), 1, words[i].B)
		}
	}

	// For each word, compute a letter histogram signature, calling the
	// "libc" classifier per character. The word pointer is caller-saved
	// across each call, so it is spilled (demote) and re-promoted after —
	// anagram's valid promotes; the ctype double-pointer dereference is
	// its legacy promote stream (§5.2.1).
	spill, serr := e.r.StackRaw(8)
	e.fail(serr)
	var sigs []uint64
	for i := range words {
		var sig uint64
		wp, wb := words[i].P, words[i].B
		for j := int64(0); j < lens[i] && e.err == nil; j++ {
			ch := e.ld(e.gep(wp, j, wb), 1, wb)
			// Spill the word pointer around the call.
			e.stp(spill, machine.Cleared, wp, wb)
			// isalpha(ch): load the double pointer, promote (legacy!),
			// index the traits table.
			tbl, tb := e.ldp(ctypeLoc.P, ctypeLoc.B)
			alpha := e.ld(e.gep(tbl, int64(ch)*8, tb), 8, tb)
			// Reload and re-promote the word pointer.
			wp, wb = e.ldp(spill, machine.Cleared)
			if alpha != 0 {
				sig |= 1 << ((ch - 'a') % 64)
			}
			e.tick(5)
		}
		sigs = append(sigs, sig)
	}

	// Count anagram-candidate pairs by signature subset tests.
	var hits uint64
	for i := range sigs {
		for j := i + 1; j < len(sigs) && j < i+48; j++ {
			if sigs[i]&sigs[j] == sigs[j] {
				hits++
			}
			e.tick(8)
		}
	}
	e.mix(hits)
	return e.sum, e.err
}

// --- ft: minimum spanning tree with Fibonacci-style heaps (PtrDist) ---
//
// Profile: the promote-heaviest program (Table 4: 2.27e8 promotes,
// ≈100% valid) with a working set far past L1D — the wrapped allocator's
// scattered per-object metadata nearly doubles the miss rate (Figure 10's
// worst case together with health).

// Node types here and below are package-level and shared across runs:
// read-only after init (see the package comment's concurrency contract).
var ftNodeT = layout.StructOf("ft_node",
	layout.F("key", layout.Long),
	layout.F("child", layout.PointerTo(nil)),
	layout.F("sibling", layout.PointerTo(nil)))

func runFT(r *rt.Runtime, scale int) (uint64, error) {
	e := newEnv(r)
	nNodes := 2600 * scale

	// Build a pairing heap by successive insertion.
	meld := func(a rt.Ptr, ab machine.BoundsReg, b rt.Ptr, bb machine.BoundsReg) (rt.Ptr, machine.BoundsReg) {
		if a == 0 {
			return b, bb
		}
		if b == 0 {
			return a, ab
		}
		ak := e.ldf(a, ab, ftNodeT, "key")
		bk := e.ldf(b, bb, ftNodeT, "key")
		if ak > bk {
			a, b = b, a
			ab, bb = bb, ab
		}
		// b becomes a's first child.
		oldChild, ocb := e.ldpf(a, ab, ftNodeT, "child")
		e.stpf(b, bb, ftNodeT, "sibling", oldChild, ocb)
		e.stpf(a, ab, ftNodeT, "child", b, bb)
		e.tick(4)
		return a, ab
	}

	var root rt.Ptr
	var rootB machine.BoundsReg
	for i := 0; i < nNodes; i++ {
		n := e.malloc(ftNodeT, 1)
		e.stf(n.P, n.B, ftNodeT, "key", e.randn(1<<30))
		root, rootB = meld(root, rootB, n.P, n.B)
	}

	// Delete-min loop: pop the root, two-pass meld its children.
	var popped uint64
	for root != 0 && e.err == nil {
		e.mix(e.ldf(root, rootB, ftNodeT, "key"))
		popped++
		// Collect children.
		var kids []struct {
			p rt.Ptr
			b machine.BoundsReg
		}
		c, cb := e.ldpf(root, rootB, ftNodeT, "child")
		for c != 0 && e.err == nil {
			next, nb := e.ldpf(c, cb, ftNodeT, "sibling")
			kids = append(kids, struct {
				p rt.Ptr
				b machine.BoundsReg
			}{c, cb})
			c, cb = next, nb
		}
		// Two-pass pairing.
		var merged []struct {
			p rt.Ptr
			b machine.BoundsReg
		}
		for i := 0; i+1 < len(kids); i += 2 {
			p, b := meld(kids[i].p, kids[i].b, kids[i+1].p, kids[i+1].b)
			merged = append(merged, struct {
				p rt.Ptr
				b machine.BoundsReg
			}{p, b})
		}
		if len(kids)%2 == 1 {
			merged = append(merged, kids[len(kids)-1])
		}
		root, rootB = 0, machine.Cleared
		for i := len(merged) - 1; i >= 0; i-- {
			root, rootB = meld(root, rootB, merged[i].p, merged[i].b)
		}
	}
	e.mix(popped)
	return e.sum, e.err
}

// --- ks: Kernighan-Schweikert graph partitioning (PtrDist) ---
//
// Profile: modules in malloc'd arrays with net lists; gain recomputation
// sweeps chase list pointers, with chain-end NULLs keeping the valid-
// promote share below full (Table 4: 79%).

var ksNetT = layout.StructOf("ks_net",
	layout.F("module", layout.Long),
	layout.F("next", layout.PointerTo(nil)))

func runKS(r *rt.Runtime, scale int) (uint64, error) {
	e := newEnv(r)
	nModules := 96 * scale
	nNets := nModules * 3

	// Module table: a single large array (global-table scheme under the
	// wrapped allocator when big enough).
	modules := e.malloc(layout.Long, uint64(nModules))
	for i := int64(0); i < int64(nModules); i++ {
		e.st(e.gep(modules.P, i*8, modules.B), uint64(i)&1, 8, modules.B) // initial side
	}

	// Per-module net chains.
	heads := make([]rt.Obj, nModules)
	for i := range heads {
		heads[i] = e.mallocBytes(8) // head cell, untyped
	}
	for n := 0; n < nNets; n++ {
		m := e.randn(uint64(nModules))
		net := e.malloc(ksNetT, 1)
		e.stf(net.P, net.B, ksNetT, "module", e.randn(uint64(nModules)))
		old, ob := e.ldp(heads[m].P, heads[m].B)
		e.stpf(net.P, net.B, ksNetT, "next", old, ob)
		e.stp(heads[m].P, heads[m].B, net.P, net.B)
	}

	// Gain sweeps: for each module, walk its nets and count cut edges.
	var totalGain uint64
	for pass := 0; pass < 40 && e.err == nil; pass++ {
		for m := 0; m < nModules && e.err == nil; m++ {
			side := e.ld(e.gep(modules.P, int64(m)*8, modules.B), 8, modules.B)
			var gain uint64
			cur, cb := e.ldp(heads[m].P, heads[m].B)
			for cur != 0 && e.err == nil {
				peer := e.ldf(cur, cb, ksNetT, "module")
				peerSide := e.ld(e.gep(modules.P, int64(peer)*8, modules.B), 8, modules.B)
				if peerSide != side {
					gain++
				}
				e.tick(4)
				cur, cb = e.ldpf(cur, cb, ksNetT, "next")
			}
			if gain > 1 {
				e.st(e.gep(modules.P, int64(m)*8, modules.B), side^1, 8, modules.B)
				totalGain += gain
			}
		}
	}
	e.mix(totalGain)
	return e.sum, e.err
}

// --- yacr2: yet another channel router (PtrDist) ---
//
// Profile: dense array scanning over malloc'd long arrays plus a few
// instrumented locals; essentially all promotes are valid.

func runYacr2(r *rt.Runtime, scale int) (uint64, error) {
	e := newEnv(r)
	nTerms := 160 * scale

	top := e.malloc(layout.Long, uint64(nTerms))
	bot := e.malloc(layout.Long, uint64(nTerms))
	vcg := e.malloc(layout.Long, uint64(nTerms)) // vertical constraint heads
	for i := int64(0); i < int64(nTerms); i++ {
		e.st(e.gep(top.P, i*8, top.B), 1+e.randn(uint64(nTerms/4)), 8, top.B)
		e.st(e.gep(bot.P, i*8, bot.B), 1+e.randn(uint64(nTerms/4)), 8, bot.B)
	}

	// The channel descriptor holds the array pointers; the router's
	// functions receive the descriptor and reload the arrays from it —
	// yacr2's (≈100% valid) promote stream.
	chanDesc := e.mallocBytes(4 * 8)
	e.stp(e.gep(chanDesc.P, 0, chanDesc.B), chanDesc.B, top.P, top.B)
	e.stp(e.gep(chanDesc.P, 8, chanDesc.B), chanDesc.B, bot.P, bot.B)
	e.stp(e.gep(chanDesc.P, 16, chanDesc.B), chanDesc.B, vcg.P, vcg.B)

	// Build the vertical constraint graph: column scans with a local
	// scratch frame per column (instrumented locals).
	for col := int64(0); col < int64(nTerms) && e.err == nil; col++ {
		mark := e.r.StackMark()
		scratch := e.localBytes(64)
		topP, topB := e.ldp(e.gep(chanDesc.P, 0, chanDesc.B), chanDesc.B)
		botP, botB := e.ldp(e.gep(chanDesc.P, 8, chanDesc.B), chanDesc.B)
		t := e.ld(e.gep(topP, col*8, topB), 8, topB)
		b := e.ld(e.gep(botP, col*8, botB), 8, botB)
		e.st(scratch.P, t, 8, scratch.B)
		e.st(e.gep(scratch.P, 8, scratch.B), b, 8, scratch.B)
		if t != b {
			e.st(e.gep(vcg.P, col*8, vcg.B), t*65536+b, 8, vcg.B)
		}
		e.tick(24)
		e.unlocal(scratch)
		_ = e.r.StackRelease(mark) // mark comes from StackMark above; cannot fail
	}

	// Track assignment sweeps: repeatedly scan the constraint array and
	// assign tracks greedily.
	assigned := e.malloc(layout.Long, uint64(nTerms))
	e.stp(e.gep(chanDesc.P, 24, chanDesc.B), chanDesc.B, assigned.P, assigned.B)
	var tracks uint64
	for sweep := 0; sweep < 10 && e.err == nil; sweep++ {
		vcgP, vcgB := e.ldp(e.gep(chanDesc.P, 16, chanDesc.B), chanDesc.B)
		asgP, asgB := e.ldp(e.gep(chanDesc.P, 24, chanDesc.B), chanDesc.B)
		for col := int64(0); col < int64(nTerms) && e.err == nil; col++ {
			c := e.ld(e.gep(vcgP, col*8, vcgB), 8, vcgB)
			a := e.ld(e.gep(asgP, col*8, asgB), 8, asgB)
			if c != 0 && a == 0 && (c>>16)%uint64(sweep+1) == 0 {
				e.st(e.gep(asgP, col*8, asgB), uint64(sweep)+1, 8, asgB)
				tracks++
			}
			e.tick(14) // track selection arithmetic
		}
	}
	e.mix(tracks)
	return e.sum, e.err
}
