// Package workloads re-implements the paper's §5.2 benchmark programs —
// the full Olden suite (bh, bisort, em3d, health, mst, perimeter, power,
// treeadd, tsp, voronoi), four PtrDist programs (anagram, ft, ks, yacr2),
// and the four "selected programs" (wolfcrypt-dh, sjeng, coremark, bzip2)
// — as kernels operating on guest memory through the instrumented runtime
// API.
//
// Every workload runs identically under every rt.Mode and returns a
// checksum; baseline and instrumented runs must agree (instrumentation
// must not change program semantics), which the test suite asserts. The
// overhead experiments (Table 4, Figures 10-12) compare machine counters
// between modes.
//
// Each kernel reproduces its original's pointer behaviour: allocation mix
// (object counts and sizes, Table 4's left half), promote sources (child
// pointers loaded from memory, NULL-heavy trees, legacy libc pointers),
// and cache footprint, because those are the quantities the paper's
// results are made of.
//
// # Concurrency contract
//
// The package-level layout.Type values describing each kernel's node
// types (bhBodyT, treeaddNodeT, ...) are constructed at package init and
// are READ-ONLY afterwards — layout.Type is immutable after construction,
// and the parallel evaluation harness (internal/exp, internal/pool)
// shares them lock-free across worker goroutines on that basis. Workload
// code must never mutate them; any per-run state belongs on the env
// (RNG, field cache, checksum), which is created fresh for every run, as
// is the rt.Runtime each cell executes against. See DESIGN.md
// "Concurrency model".
package workloads

import (
	"fmt"

	"infat/internal/layout"
	"infat/internal/machine"
	"infat/internal/rt"
)

// Version is the kernel-behaviour version folded into memoization
// digests (internal/memo). Bump it whenever any kernel's observable
// behaviour changes — allocation mix, checksum, counter profile — which
// invalidates every memoized cell computed from the old kernels.
const Version = "workloads/v1"

// Workload is one registered benchmark.
type Workload struct {
	Name  string
	Suite string // "olden", "ptrdist", "other"
	// Run executes the kernel at the given scale (1 = the standard
	// experiment size; tests use smaller) and returns a checksum that
	// must be mode-independent.
	Run func(r *rt.Runtime, scale int) (uint64, error)
}

// All lists every workload in the paper's Table-4 order.
var All = []Workload{
	{"bh", "olden", runBH},
	{"bisort", "olden", runBisort},
	{"em3d", "olden", runEM3D},
	{"health", "olden", runHealth},
	{"mst", "olden", runMST},
	{"perimeter", "olden", runPerimeter},
	{"power", "olden", runPower},
	{"treeadd", "olden", runTreeAdd},
	{"tsp", "olden", runTSP},
	{"voronoi", "olden", runVoronoi},
	{"anagram", "ptrdist", runAnagram},
	{"ft", "ptrdist", runFT},
	{"ks", "ptrdist", runKS},
	{"yacr2", "ptrdist", runYacr2},
	{"wolfcrypt-dh", "other", runWolfcryptDH},
	{"sjeng", "other", runSjeng},
	{"coremark", "other", runCoreMark},
	{"bzip2", "other", runBzip2},
}

// ByName returns the named workload.
func ByName(name string) (Workload, bool) {
	for _, w := range All {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// env wraps a Runtime with sticky-error ergonomics and a deterministic RNG
// so kernels read like the C originals instead of error-plumbing.
type env struct {
	r   *rt.Runtime
	err error
	rng uint64

	fields map[*layout.Type]*typeFields
	lastT  *layout.Type // fieldOf memo: kernels cluster accesses by type,
	lastTF *typeFields  // so most lookups skip even the pointer-keyed map
	lastT2 *layout.Type // second memo slot: kernels walking a linked
	lastF2 *typeFields  // structure alternate node/payload types, which
	// would thrash a single slot back to the map on every access
	sum uint64 // running checksum
}

// typeFields caches the resolved member lookups of one type. Lookups scan
// linearly: a kernel touches a handful of paths per type, and the path
// arguments are call-site string literals, so the == compare is a
// pointer-and-length check that almost never reads the bytes. This keeps
// string hashing entirely off the access hot path (profiling showed the
// previous map[{type,path}]field spending more grid time hashing keys
// than the simulated cache model spent simulating).
type typeFields struct {
	paths  []string
	fields []field
}

type field struct {
	off  int64
	idx  uint16
	size int
}

func newEnv(r *rt.Runtime) *env {
	return &env{r: r, rng: 0x9E3779B97F4A7C15, fields: make(map[*layout.Type]*typeFields)}
}

func (e *env) fail(err error) {
	if e.err == nil && err != nil {
		e.err = err
	}
}

// rand is xorshift64*: deterministic across modes and runs.
func (e *env) rand() uint64 {
	x := e.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	e.rng = x
	return x * 0x2545F4914F6CDD1D
}

func (e *env) randn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return e.rand() % n
}

func (e *env) mix(v uint64) { e.sum = (e.sum*1099511628211 ^ v) }

// tick models plain computation instructions.
func (e *env) tick(n uint64) { e.r.M.Tick(n) }

// fieldOf resolves and caches a member's offset, subobject index, and
// size. Paths address nested members the way the compiler's GEP
// instrumentation would (layout-table paths like "array[].v3").
func (e *env) fieldOf(t *layout.Type, path string) field {
	tf := e.lastTF
	if t != e.lastT || tf == nil {
		if t == e.lastT2 && e.lastF2 != nil {
			tf = e.lastF2
			e.lastT, e.lastT2 = t, e.lastT
			e.lastTF, e.lastF2 = tf, e.lastTF
		} else {
			tf = e.fields[t]
			if tf == nil {
				tf = &typeFields{}
				e.fields[t] = tf
			}
			e.lastT2, e.lastF2 = e.lastT, e.lastTF
			e.lastT, e.lastTF = t, tf
		}
	}
	for i, s := range tf.paths {
		if s == path {
			// Transpose toward the front: hot paths migrate one slot per
			// hit, so a kernel's inner-loop fields end up scanned first.
			// Hits in the top two slots stay put — that way a pair of
			// alternating hot paths settles at slots 0 and 1 with no
			// further writes, instead of swapping on every lookup. Order
			// is host-side cache state only — lookups are exact-match.
			if i > 1 {
				tf.paths[i-1], tf.paths[i] = tf.paths[i], tf.paths[i-1]
				tf.fields[i-1], tf.fields[i] = tf.fields[i], tf.fields[i-1]
				return tf.fields[i-1]
			}
			return tf.fields[i]
		}
	}
	ft, off := resolvePath(t, path)
	if ft == nil {
		e.fail(fmt.Errorf("workloads: no field %q in %s", path, t.Name))
		return field{}
	}
	var idx uint16
	if e.r.Instrumented() {
		if i, err := e.r.SubobjIndexOf(t, path); err == nil {
			idx = i
		}
	}
	f := field{off: off, idx: idx, size: int(ft.Size())}
	tf.paths = append(tf.paths, path)
	tf.fields = append(tf.fields, f)
	return f
}

// resolvePath walks a dotted member path ("a.b[].c") returning the final
// member's type and its offset from the start of the outermost element.
// "[]" segments descend into array elements at offset 0.
func resolvePath(t *layout.Type, path string) (*layout.Type, int64) {
	cur := t
	var off int64
	start := 0
	for i := 0; i <= len(path); i++ {
		if i < len(path) && path[i] != '.' {
			continue
		}
		seg := path[start:i]
		start = i + 1
		arr := false
		if n := len(seg); n >= 2 && seg[n-2] == '[' && seg[n-1] == ']' {
			seg, arr = seg[:n-2], true
		}
		if seg != "" {
			if cur.Kind != layout.KindStruct {
				return nil, 0
			}
			f, ok := cur.FieldByName(seg)
			if !ok {
				return nil, 0
			}
			off += int64(f.Offset)
			cur = f.Type
		}
		if arr {
			if cur.Kind != layout.KindArray {
				return nil, 0
			}
			cur = cur.Elem
		}
	}
	return cur, off
}

// --- access shorthands (sticky error) ---

func (e *env) ld(p rt.Ptr, size int, b machine.BoundsReg) uint64 {
	if e.err != nil {
		return 0
	}
	v, err := e.r.Load(p, size, b)
	e.fail(err)
	return v
}

func (e *env) st(p rt.Ptr, v uint64, size int, b machine.BoundsReg) {
	if e.err != nil {
		return
	}
	e.fail(e.r.Store(p, v, size, b))
}

func (e *env) ldp(p rt.Ptr, b machine.BoundsReg) (rt.Ptr, machine.BoundsReg) {
	if e.err != nil {
		return 0, machine.Cleared
	}
	q, qb, err := e.r.LoadPtr(p, b)
	e.fail(err)
	return q, qb
}

func (e *env) stp(p rt.Ptr, b machine.BoundsReg, v rt.Ptr, vb machine.BoundsReg) {
	if e.err != nil {
		return
	}
	e.fail(e.r.StorePtr(p, b, v, vb))
}

func (e *env) gep(p rt.Ptr, delta int64, b machine.BoundsReg) rt.Ptr {
	if e.err != nil {
		return 0
	}
	return e.r.GEP(p, delta, b)
}

func (e *env) sub(p rt.Ptr, idx uint16) rt.Ptr {
	if e.err != nil {
		return 0
	}
	return e.r.SetSub(p, idx)
}

// fieldPtr derives a pointer to a member, emitting GEP + subobject-index
// update exactly as the compiler instruments &p->member.
func (e *env) fieldPtr(p rt.Ptr, b machine.BoundsReg, t *layout.Type, path string) rt.Ptr {
	f := e.fieldOf(t, path)
	return e.sub(e.gep(p, f.off, b), f.idx)
}

// ldf loads a member's scalar value (address computation + load; no
// subobject-index update is needed for a transient access).
func (e *env) ldf(p rt.Ptr, b machine.BoundsReg, t *layout.Type, path string) uint64 {
	f := e.fieldOf(t, path)
	return e.ld(e.gep(p, f.off, b), f.size, b)
}

// stf stores a member's scalar value.
func (e *env) stf(p rt.Ptr, b machine.BoundsReg, t *layout.Type, path string, v uint64) {
	f := e.fieldOf(t, path)
	e.st(e.gep(p, f.off, b), v, f.size, b)
}

// ldpf loads a pointer member and promotes it.
func (e *env) ldpf(p rt.Ptr, b machine.BoundsReg, t *layout.Type, path string) (rt.Ptr, machine.BoundsReg) {
	f := e.fieldOf(t, path)
	return e.ldp(e.gep(p, f.off, b), b)
}

// stpf stores a pointer member (demote + store).
func (e *env) stpf(p rt.Ptr, b machine.BoundsReg, t *layout.Type, path string, v rt.Ptr, vb machine.BoundsReg) {
	f := e.fieldOf(t, path)
	e.stp(e.gep(p, f.off, b), b, v, vb)
}

// --- allocation shorthands ---

func (e *env) malloc(t *layout.Type, n uint64) rt.Obj {
	if e.err != nil {
		return rt.Obj{}
	}
	o, err := e.r.Malloc(t, n)
	e.fail(err)
	return o
}

func (e *env) mallocBytes(n uint64) rt.Obj {
	if e.err != nil {
		return rt.Obj{}
	}
	o, err := e.r.MallocBytes(n)
	e.fail(err)
	return o
}

func (e *env) mallocLegacy(n uint64) rt.Obj {
	if e.err != nil {
		return rt.Obj{}
	}
	o, err := e.r.MallocLegacy(n)
	e.fail(err)
	return o
}

func (e *env) free(o rt.Obj) {
	if e.err != nil {
		return
	}
	e.fail(e.r.Free(o))
}

func (e *env) local(t *layout.Type) rt.Obj {
	if e.err != nil {
		return rt.Obj{}
	}
	o, err := e.r.AllocLocal(t)
	e.fail(err)
	return o
}

func (e *env) localBytes(n uint64) rt.Obj {
	if e.err != nil {
		return rt.Obj{}
	}
	o, err := e.r.AllocLocalBytes(n)
	e.fail(err)
	return o
}

func (e *env) unlocal(o rt.Obj) {
	if e.err != nil {
		return
	}
	e.fail(e.r.DeallocLocal(o))
}

func (e *env) global(t *layout.Type) rt.Obj {
	if e.err != nil {
		return rt.Obj{}
	}
	o, err := e.r.RegisterGlobal(t)
	e.fail(err)
	return o
}

func (e *env) globalBytes(n uint64) rt.Obj {
	if e.err != nil {
		return rt.Obj{}
	}
	o, err := e.r.RegisterGlobalBytes(n)
	e.fail(err)
	return o
}
