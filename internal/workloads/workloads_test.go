package workloads

import (
	"testing"

	"infat/internal/layout"
	"infat/internal/rt"
)

// TestChecksumsModeIndependent is the central soundness check of the whole
// evaluation methodology: every workload must compute the same result in
// baseline, subheap, wrapped, and both no-promote variants — the
// instrumentation may only add checks, never change semantics.
func TestChecksumsModeIndependent(t *testing.T) {
	for _, w := range All {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			base := runOnce(t, w, rt.Baseline, false)
			for _, cfg := range []struct {
				mode      rt.Mode
				noPromote bool
				name      string
			}{
				{rt.Subheap, false, "subheap"},
				{rt.Wrapped, false, "wrapped"},
				{rt.Hybrid, false, "hybrid"},
				{rt.Subheap, true, "subheap-nopromote"},
				{rt.Wrapped, true, "wrapped-nopromote"},
			} {
				if got := runOnce(t, w, cfg.mode, cfg.noPromote); got != base {
					t.Errorf("%s checksum %#x != baseline %#x", cfg.name, got, base)
				}
			}
		})
	}
}

func runOnce(t *testing.T, w Workload, mode rt.Mode, noPromote bool) uint64 {
	t.Helper()
	r := rt.New(mode)
	r.M.NoPromote = noPromote
	sum, err := w.Run(r, 1)
	if err != nil {
		t.Fatalf("%s/%v: %v", w.Name, mode, err)
	}
	return sum
}

func TestInstrumentationIsActive(t *testing.T) {
	// Instrumented runs must actually execute promotes and checks — a
	// workload that silently bypasses the API would fake a low overhead.
	for _, w := range All {
		r := rt.New(rt.Subheap)
		if _, err := w.Run(r, 1); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		c := r.M.C
		if c.Promote == 0 {
			t.Errorf("%s: no promotes executed", w.Name)
		}
		if c.Checks == 0 {
			t.Errorf("%s: no bounds checks executed", w.Name)
		}
		if c.CheckFails != 0 {
			t.Errorf("%s: %d spurious check failures", w.Name, c.CheckFails)
		}
		if c.PromoteFailed != 0 {
			t.Errorf("%s: %d promotes found invalid metadata", w.Name, c.PromoteFailed)
		}
	}
}

func TestBaselineEmitsNoIFP(t *testing.T) {
	for _, w := range All {
		r := rt.New(rt.Baseline)
		if _, err := w.Run(r, 1); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if n := r.M.C.IfpTotal(); n != 0 {
			t.Errorf("%s: baseline executed %d IFP instructions", w.Name, n)
		}
	}
}

func TestWorkloadSignatures(t *testing.T) {
	// Spot-check the per-program pointer profiles Table 4 reports.
	run := func(name string) *rt.Runtime {
		w, ok := ByName(name)
		if !ok {
			t.Fatalf("no workload %s", name)
		}
		r := rt.New(rt.Subheap)
		if _, err := w.Run(r, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return r
	}

	// treeadd: ~50% of promotes bypass on NULL (leaf children).
	r := run("treeadd")
	c := r.M.C
	nullShare := float64(c.PromoteNull) / float64(c.Promote)
	if nullShare < 0.35 || nullShare > 0.65 {
		t.Errorf("treeadd NULL promote share = %.2f, want ~0.5", nullShare)
	}

	// anagram: legacy pointers dominate the bypasses (libc ctype).
	r = run("anagram")
	c = r.M.C
	if c.PromoteLegacy == 0 {
		t.Error("anagram: no legacy promotes")
	}
	if float64(c.PromoteValid)/float64(c.Promote) > 0.75 {
		t.Errorf("anagram: valid share %.2f too high — legacy path missing",
			float64(c.PromoteValid)/float64(c.Promote))
	}

	// ft: essentially all promotes valid.
	r = run("ft")
	c = r.M.C
	if v := float64(c.PromoteValid) / float64(c.Promote); v < 0.9 {
		t.Errorf("ft: valid promote share = %.2f, want ~1.0", v)
	}

	// coremark: narrowing attempts all coarsen (no layout table), and
	// there is exactly one heap allocation.
	r = run("coremark")
	c = r.M.C
	if c.NarrowAttempts == 0 || c.NarrowSuccess != 0 {
		t.Errorf("coremark: narrow attempts=%d success=%d, want attempts>0 success=0",
			c.NarrowAttempts, c.NarrowSuccess)
	}
	if r.Stats.HeapObjects != 1 {
		t.Errorf("coremark heap objects = %d, want 1", r.Stats.HeapObjects)
	}

	// bh: local objects dominate object instrumentation.
	r = run("bh")
	if r.Stats.LocalObjects <= r.Stats.HeapObjects {
		t.Errorf("bh: locals %d <= heap %d, want local-dominated",
			r.Stats.LocalObjects, r.Stats.HeapObjects)
	}
	if r.Stats.LocalWithLT != r.Stats.LocalObjects {
		t.Errorf("bh: typed vector locals should all carry layout tables: %d of %d",
			r.Stats.LocalWithLT, r.Stats.LocalObjects)
	}

	// sjeng: exactly one instrumented global, served by the global table.
	r = run("sjeng")
	if r.Stats.GlobalObjects != 1 {
		t.Errorf("sjeng globals = %d, want 1", r.Stats.GlobalObjects)
	}

	// perimeter: bounds spill/reload traffic present (recursion).
	r = run("perimeter")
	if r.M.C.LdBnd == 0 || r.M.C.StBnd == 0 {
		t.Error("perimeter: no bounds spill traffic")
	}

	// em3d under subheap uses many distinct pools (varied array sizes).
	r = run("em3d")
	if r.Stats.HeapObjects < 300 {
		t.Errorf("em3d heap objects = %d", r.Stats.HeapObjects)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("treeadd"); !ok {
		t.Error("treeadd missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ghost workload found")
	}
	if len(All) != 18 {
		t.Errorf("suite has %d workloads, want 18", len(All))
	}
}

func TestResolvePath(t *testing.T) {
	nested := layout.StructOf("N", layout.F("a", layout.Int), layout.F("b", layout.Int))
	s := layout.StructOf("S",
		layout.F("x", layout.Long),
		layout.F("arr", layout.ArrayOf(nested, 3)),
		layout.F("tail", layout.Int))
	cases := []struct {
		path string
		off  int64
		size uint64
	}{
		{"x", 0, 8},
		{"arr", 8, 24},
		{"arr[].a", 8, 4},
		{"arr[].b", 12, 4},
		{"tail", 32, 4},
	}
	for _, tc := range cases {
		ft, off := resolvePath(s, tc.path)
		if ft == nil || off != tc.off || ft.Size() != tc.size {
			t.Errorf("resolvePath(%q) = (%v, %d)", tc.path, ft, off)
		}
	}
	if ft, _ := resolvePath(s, "ghost"); ft != nil {
		t.Error("ghost path resolved")
	}
	if ft, _ := resolvePath(s, "x[].y"); ft != nil {
		t.Error("array descent through scalar resolved")
	}
}

func TestEnvRNGDeterministic(t *testing.T) {
	e1 := newEnv(rt.New(rt.Baseline))
	e2 := newEnv(rt.New(rt.Subheap))
	for i := 0; i < 100; i++ {
		if e1.rand() != e2.rand() {
			t.Fatal("RNG mode-dependent")
		}
	}
	if e1.randn(0) != 0 {
		t.Error("randn(0)")
	}
}

// TestAllSignatures pins each workload's Table-4 fingerprint: the valid-
// promote share band and the object-instrumentation shape the paper
// reports per program.
func TestAllSignatures(t *testing.T) {
	type band struct {
		validLo, validHi float64 // valid-promote share
		heapMin          uint64  // minimum heap objects
		wantLT           bool    // some heap objects carry layout tables
		wantNarrow       bool    // successful narrowing expected
		wantCoarse       bool    // coarsened narrowing expected
		wantLegacy       bool    // legacy-pointer promotes expected
	}
	bands := map[string]band{
		"bh":           {0.6, 1.0, 100, true, false, false, false},
		"bisort":       {0.4, 0.65, 500, true, false, false, false},
		"em3d":         {0.9, 1.0, 700, true, false, false, false},
		"health":       {0.85, 1.0, 2000, true, true, false, false},
		"mst":          {0.5, 0.85, 400, true, false, false, true},
		"perimeter":    {0.9, 1.0, 3000, true, false, false, false},
		"power":        {0.9, 1.0, 70, true, false, false, false},
		"treeadd":      {0.35, 0.65, 2000, true, false, false, false},
		"tsp":          {0.9, 1.0, 500, true, false, false, false},
		"voronoi":      {0.3, 0.6, 100, true, false, false, true},
		"anagram":      {0.3, 0.65, 150, false, false, false, true},
		"ft":           {0.85, 1.0, 2500, true, false, false, false},
		"ks":           {0.6, 0.9, 350, true, false, false, false},
		"yacr2":        {0.9, 1.0, 5, false, false, false, false},
		"wolfcrypt-dh": {0.9, 1.0, 150, false, false, false, false},
		"sjeng":        {0.15, 0.8, 1, false, false, false, true},
		"coremark":     {0.9, 1.0, 1, false, false, true, false},
		"bzip2":        {0.6, 0.95, 4, false, false, true, true},
	}
	for _, w := range All {
		b, ok := bands[w.Name]
		if !ok {
			t.Errorf("no signature band for %s", w.Name)
			continue
		}
		r := rt.New(rt.Subheap)
		if _, err := w.Run(r, 1); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		c := r.M.C
		valid := float64(c.PromoteValid) / float64(c.Promote)
		if valid < b.validLo || valid > b.validHi {
			t.Errorf("%s: valid-promote share %.2f outside [%.2f, %.2f]",
				w.Name, valid, b.validLo, b.validHi)
		}
		if r.Stats.HeapObjects < b.heapMin {
			t.Errorf("%s: heap objects %d < %d", w.Name, r.Stats.HeapObjects, b.heapMin)
		}
		if b.wantLT && r.Stats.HeapWithLT == 0 {
			t.Errorf("%s: no heap objects with layout tables", w.Name)
		}
		if !b.wantLT && r.Stats.HeapWithLT > r.Stats.HeapObjects/2 {
			t.Errorf("%s: unexpectedly many layout tables (%d of %d)",
				w.Name, r.Stats.HeapWithLT, r.Stats.HeapObjects)
		}
		if b.wantNarrow && c.NarrowSuccess == 0 {
			t.Errorf("%s: no successful narrowing", w.Name)
		}
		if b.wantCoarse && c.NarrowCoarse == 0 {
			t.Errorf("%s: no coarsened narrowing", w.Name)
		}
		if b.wantLegacy && c.PromoteLegacy == 0 {
			t.Errorf("%s: no legacy promotes", w.Name)
		}
	}
}

// TestScaleParameter verifies that scale grows the work (the experiment
// drivers rely on it for the memory runs).
func TestScaleParameter(t *testing.T) {
	for _, name := range []string{"treeadd", "health", "coremark"} {
		w, _ := ByName(name)
		r1 := rt.New(rt.Baseline)
		if _, err := w.Run(r1, 1); err != nil {
			t.Fatal(err)
		}
		r2 := rt.New(rt.Baseline)
		if _, err := w.Run(r2, 2); err != nil {
			t.Fatal(err)
		}
		if r2.M.C.Instrs <= r1.M.C.Instrs {
			t.Errorf("%s: scale 2 instrs %d <= scale 1 %d", name, r2.M.C.Instrs, r1.M.C.Instrs)
		}
	}
}
