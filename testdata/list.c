// A clean linked-list workout: builds, sums, and frees a list. Runs
// identically in every mode; try `minicc -stats` to see the promote
// traffic.
struct Node { long val; struct Node *next; };
struct Node *head;
int main() {
	int i;
	for (i = 0; i < 100; i = i + 1) {
		struct Node *n = (struct Node*)malloc(sizeof(struct Node));
		n->val = i;
		n->next = head;
		head = n;
	}
	long sum = 0;
	struct Node *cur = head;
	while (cur != (struct Node*)0) {
		sum = sum + cur->val;
		cur = cur->next;
	}
	print(sum);
	return 0;
}
