// Listing 1 of the paper: intra-object overflow from `vulnerable` into
// `sensitive`. Instrumented runs trap at i == 12.
struct S {
	char vulnerable[12];
	char sensitive[12];
};
char *gv;
int main() {
	struct S *s = (struct S*)malloc(sizeof(struct S));
	gv = s->vulnerable;
	char *p = gv;
	int i;
	for (i = 0; i <= 12; i = i + 1) { p[i] = 'A'; }
	free(s);
	return 0;
}
