// Exercises switch/do-while over a checked buffer.
int main() {
	char buf[32];
	memset(buf, 0, 32);
	int i = 0;
	do {
		switch (i % 3) {
		case 0: buf[i] = 'x'; break;
		case 1: buf[i] = 'y'; break;
		default: buf[i] = 'z';
		}
		i = i + 1;
	} while (i < 32);
	long sum = 0;
	for (i = 0; i < 32; i = i + 1) { sum = sum + buf[i]; }
	print(sum);
	return 0;
}
